//! Process-global thread registry.
//!
//! Publish-on-ping reclaimers need to signal every thread that may hold
//! private reservations. POSIX signals address a `pthread_t`, so each
//! participating thread claims a slot in this registry, publishing its
//! `pthread_t` under a small integer *global thread id* (`gtid`). Reclaimers
//! iterate slots and [`Registry::ping`] the active ones.
//!
//! ## Why a per-slot kill lock
//!
//! `pthread_kill` on a thread id whose thread has terminated and been joined
//! is undefined behaviour. The registration guard therefore deregisters
//! *before* the thread exits, and deregistration synchronizes with
//! concurrent pingers through a per-slot spinlock held only around the
//! `pthread_kill` call itself. The signal handler never takes this lock, so
//! async-signal-safety is preserved.

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Maximum number of concurrently registered threads in the process.
///
/// The signal handler performs a bounded scan over this table, so it is a
/// fixed compile-time size. 512 covers the paper's largest experiment (288
/// threads on a 144-core machine) with room for test harness threads.
pub const MAX_THREADS: usize = 512;

/// What became of a [`Registry::ping`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PingOutcome {
    /// Signal queued — the target may be expected to publish.
    Sent,
    /// Slot holds no live registration; nothing to wait for.
    Inactive,
    /// `pthread_kill` reported `ESRCH`: the registered thread is gone.
    /// Callers must stop waiting for it and feed it to their reaper.
    /// On glibc ≥ 2.35 a dead-but-unjoined thread instead reports
    /// [`PingOutcome::Sent`] (the kill silently no-ops), so waiters must
    /// not rely on this outcome alone — the publish-wait watchdog's
    /// [`Registry::probe`] path is the authoritative death detector.
    Dead,
    /// `pthread_kill` failed with an unexpected errno (carried here).
    /// Never expected in practice; counted by [`ping_error_count`].
    Failed(i32),
}

/// Result of a [`Registry::probe`] liveness check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Liveness {
    /// The registration is still held by a live, signalable thread.
    Alive,
    /// The slot is still claimed by that registration, but the OS reports
    /// the thread no longer exists (died without deregistering).
    Dead,
    /// That registration no longer holds the slot (deregistered cleanly,
    /// or the slot was reclaimed by a newer generation).
    Vacated,
}

/// `pthread_kill` failures other than `ESRCH`, process-wide (satellite
/// observability for the "never expected" branch of [`Registry::ping`]).
static PING_ERRORS: AtomicU64 = AtomicU64::new(0);

/// Number of pings that failed with an errno other than `ESRCH`.
pub fn ping_error_count() -> u64 {
    PING_ERRORS.load(Ordering::Relaxed)
}

/// One registry slot. Field ordering of writes during registration matters:
/// `pthread` is stored *before* `active` is released, so a scanning signal
/// handler can never attribute a slot to a stale `pthread_t`.
struct Slot {
    /// The owner's `pthread_t`. Valid only while `active` is true.
    pthread: AtomicU64,
    /// The owner's kernel task id (`gettid`), for liveness probes: the
    /// kernel releases a tid the moment its thread exits (threads self-reap
    /// without a join), so `tgkill(pid, tid, 0)` reports `ESRCH` for a dead
    /// thread where `pthread_kill(pt, 0)` on glibc ≥ 2.35 silently
    /// succeeds. Stored as `i64` widened into a `u64` cell.
    kernel_tid: AtomicU64,
    /// Slot is claimed and the owner thread is alive and signalable.
    active: AtomicBool,
    /// Serializes `pthread_kill` against deregistration (see module docs).
    kill_lock: AtomicBool,
    /// Bumped on every claim. A `(gtid, generation)` pair names one
    /// registration forever: liveness probes compare it so a reused slot
    /// can never be mistaken for the registration that died there.
    generation: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            pthread: AtomicU64::new(0),
            kernel_tid: AtomicU64::new(0),
            active: AtomicBool::new(false),
            kill_lock: AtomicBool::new(false),
            generation: AtomicU64::new(0),
        }
    }

    fn lock(&self) {
        while self
            .kill_lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            core::hint::spin_loop();
        }
    }

    fn unlock(&self) {
        self.kill_lock.store(false, Ordering::Release);
    }
}

/// The calling thread's kernel task id (0 where unavailable).
fn current_tid() -> u64 {
    #[cfg(target_os = "linux")]
    {
        (unsafe { libc::syscall(libc::SYS_gettid) } as libc::pid_t) as u64
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Whether the kernel says task `tid` of this process no longer exists.
///
/// `false` on any ambiguity (tid 0, non-Linux, unexpected errno): liveness
/// probing must only ever fail toward "alive" — a reused tid makes a dead
/// thread look alive (reap deferred, still correct), never the reverse.
fn tid_gone(tid: u64) -> bool {
    #[cfg(target_os = "linux")]
    {
        if tid == 0 {
            return false;
        }
        let rc = unsafe { libc::syscall(libc::SYS_tgkill, libc::getpid(), tid as libc::pid_t, 0) };
        rc != 0 && unsafe { *libc::__errno_location() } == libc::ESRCH
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = tid;
        false
    }
}

/// Process-global table of signalable threads.
pub struct Registry {
    slots: Box<[Slot]>,
    /// Upper bound (exclusive) on claimed slot indices, to shorten scans.
    high_water: AtomicU64,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Registry access that never allocates: `None` until first registration.
///
/// The signal handler must not run `OnceLock::get_or_init` (it allocates),
/// so it uses this accessor; the registry is always initialized before any
/// thread can be pinged.
pub(crate) fn try_global() -> Option<&'static Registry> {
    GLOBAL.get()
}

impl Registry {
    fn new() -> Self {
        let mut v = Vec::with_capacity(MAX_THREADS);
        v.resize_with(MAX_THREADS, Slot::new);
        Registry {
            slots: v.into_boxed_slice(),
            high_water: AtomicU64::new(0),
        }
    }

    /// The process-wide registry instance.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::new)
    }

    /// Registers the calling thread, returning an RAII guard that
    /// deregisters on drop. Panics if all [`MAX_THREADS`] slots are taken.
    ///
    /// Also installs the process-global signal handler on first use, so any
    /// registered thread is ready to service pings.
    pub fn register_current(&'static self) -> ThreadRegistration {
        crate::signal::install_handler();
        let me = unsafe { libc::pthread_self() } as u64;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.active.load(Ordering::Relaxed) {
                continue;
            }
            // Claim the slot: the CAS on `active` false->true is the unique
            // claim token; `pthread` is written while we exclusively own the
            // slot but *before* other threads consider it pingable.
            slot.lock();
            let claimed = slot
                .active
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok();
            if claimed {
                slot.pthread.store(me, Ordering::Release);
                slot.kernel_tid.store(current_tid(), Ordering::Release);
                slot.generation.fetch_add(1, Ordering::Release);
            }
            slot.unlock();
            if claimed {
                self.high_water.fetch_max(i as u64 + 1, Ordering::Relaxed);
                return ThreadRegistration {
                    registry: self,
                    gtid: i,
                };
            }
        }
        panic!("pop-runtime: thread registry exhausted ({MAX_THREADS} slots)");
    }

    fn deregister(&self, gtid: usize) {
        let slot = &self.slots[gtid];
        // Holding the kill lock guarantees no pinger is mid-`pthread_kill`
        // on our pthread_t when we mark the slot inactive and return.
        slot.lock();
        slot.active.store(false, Ordering::Release);
        slot.unlock();
    }

    /// Sends `signo` to the thread registered at `gtid`.
    ///
    /// The outcome distinguishes the three ways a ping can fail:
    /// [`PingOutcome::Inactive`] (deregistered — don't wait),
    /// [`PingOutcome::Dead`] (`ESRCH`: the thread died *without*
    /// deregistering — don't wait, and reap it), and
    /// [`PingOutcome::Failed`] (any other errno; glibc returns the error
    /// number directly). The last should be impossible for a valid
    /// `pthread_t` and live signal handler, so it debug-asserts and is
    /// counted by [`ping_error_count`].
    pub fn ping(&self, gtid: usize, signo: i32) -> PingOutcome {
        let slot = &self.slots[gtid];
        if !slot.active.load(Ordering::Acquire) {
            return PingOutcome::Inactive;
        }
        slot.lock();
        let out = if slot.active.load(Ordering::Relaxed) {
            let pt = slot.pthread.load(Ordering::Relaxed) as libc::pthread_t;
            match unsafe { libc::pthread_kill(pt, signo) } {
                0 => PingOutcome::Sent,
                // ESRCH (no such thread): the OS tells us the registered
                // thread is gone (paper §4.1.2 tolerates this; the reaper
                // recovers its state).
                libc::ESRCH => PingOutcome::Dead,
                e => {
                    PING_ERRORS.fetch_add(1, Ordering::Relaxed);
                    debug_assert!(false, "pthread_kill(gtid {gtid}) failed with errno {e}");
                    PingOutcome::Failed(e)
                }
            }
        } else {
            PingOutcome::Inactive
        };
        slot.unlock();
        out
    }

    /// Whether `gtid` currently holds a live registration.
    pub fn is_active(&self, gtid: usize) -> bool {
        self.slots[gtid].active.load(Ordering::Acquire)
    }

    /// The current claim generation of `gtid`'s slot. Capture this at
    /// registration time; `(gtid, generation)` then names that
    /// registration for [`Self::probe`]/[`Self::reap`] even after the slot
    /// is recycled.
    pub fn generation_of(&self, gtid: usize) -> u64 {
        self.slots[gtid].generation.load(Ordering::Acquire)
    }

    /// Probes whether the registration `(gtid, generation)` still belongs
    /// to a live thread, without delivering a signal.
    ///
    /// Uses a sig-0 `tgkill` on the kernel tid recorded at registration —
    /// not `pthread_kill`, which on glibc ≥ 2.35 silently succeeds for an
    /// exited-but-unjoined thread and so can never report death.
    ///
    /// Conservative on every race: an ambiguous probe (tid reused by a new
    /// thread, unexpected errno, non-Linux) reads as [`Liveness::Alive`]
    /// (never reap on ambiguity), and a slot reclaimed by a newer
    /// generation reads as [`Liveness::Vacated`] — the probed registration
    /// is gone either way, but the new occupant is not misjudged by the old
    /// one's fate.
    pub fn probe(&self, gtid: usize, generation: u64) -> Liveness {
        let slot = &self.slots[gtid];
        if !slot.active.load(Ordering::Acquire) {
            return Liveness::Vacated;
        }
        slot.lock();
        let out = if !slot.active.load(Ordering::Relaxed)
            || slot.generation.load(Ordering::Relaxed) != generation
        {
            Liveness::Vacated
        } else if tid_gone(slot.kernel_tid.load(Ordering::Relaxed)) {
            Liveness::Dead
        } else {
            Liveness::Alive
        };
        slot.unlock();
        out
    }

    /// Releases the slot of a registration whose thread died without
    /// deregistering. Succeeds only when `(gtid, generation)` still holds
    /// the slot *and* the kernel-tid probe confirms the thread is gone,
    /// re-checked under the kill lock — a live or vacated registration is
    /// never disturbed.
    pub fn reap(&self, gtid: usize, generation: u64) -> bool {
        let slot = &self.slots[gtid];
        slot.lock();
        let reaped = slot.active.load(Ordering::Relaxed)
            && slot.generation.load(Ordering::Relaxed) == generation
            && tid_gone(slot.kernel_tid.load(Ordering::Relaxed));
        if reaped {
            slot.active.store(false, Ordering::Release);
        }
        slot.unlock();
        reaped
    }

    /// Locates the calling thread's gtid by scanning for `pthread_self()`.
    ///
    /// Async-signal-safe: a bounded loop of relaxed/acquire atomic loads.
    /// Used by the signal handler instead of TLS (lazily-initialized TLS is
    /// not async-signal-safe).
    pub fn find_current(&self) -> Option<usize> {
        let me = unsafe { libc::pthread_self() } as u64;
        let hw = self.high_water.load(Ordering::Relaxed) as usize;
        for i in 0..hw.min(MAX_THREADS) {
            let slot = &self.slots[i];
            // Acquire on `active` orders the subsequent pthread load after
            // the registrant's Release store of its pthread.
            if slot.active.load(Ordering::Acquire) && slot.pthread.load(Ordering::Acquire) == me {
                return Some(i);
            }
        }
        None
    }

    /// Number of slots that may have ever been claimed (scan bound).
    pub fn scan_bound(&self) -> usize {
        (self.high_water.load(Ordering::Relaxed) as usize).min(MAX_THREADS)
    }
}

/// RAII registration for the current thread.
///
/// Dropping the guard deregisters the thread; every registered thread *must*
/// drop its guard before exiting (the guard makes this automatic for scoped
/// and spawned threads that own it).
pub struct ThreadRegistration {
    registry: &'static Registry,
    gtid: usize,
}

impl ThreadRegistration {
    /// The global thread id claimed by this registration.
    pub fn gtid(&self) -> usize {
        self.gtid
    }
}

impl Drop for ThreadRegistration {
    fn drop(&mut self) {
        self.registry.deregister(self.gtid);
    }
}

// ---------------------------------------------------------------------------
// Shared (refcounted) registration
// ---------------------------------------------------------------------------

std::thread_local! {
    /// One underlying registration per OS thread, shared by every
    /// reclamation domain the thread participates in. Critical for the
    /// signal handler's `find_current` scan: a thread must occupy exactly
    /// one slot, or publishers keyed on the *first* matching slot would miss
    /// domains that recorded a different gtid for the same thread.
    static SHARED_REG: core::cell::RefCell<Option<(ThreadRegistration, usize)>> =
        const { core::cell::RefCell::new(None) };
}

/// Refcounted handle to the calling thread's global registration.
///
/// Multiple live handles on one thread share a single registry slot; the
/// slot is released when the last handle drops (or at thread exit via the
/// TLS destructor, as a safety net). Not `Send`: the handle is bound to the
/// registering thread.
pub struct SharedRegistration {
    gtid: usize,
    _not_send: core::marker::PhantomData<*const ()>,
}

impl SharedRegistration {
    /// The calling thread's global thread id.
    pub fn gtid(&self) -> usize {
        self.gtid
    }
}

/// Registers the calling thread (or bumps the refcount of its existing
/// registration) and returns a shared handle.
pub fn register_current_shared() -> SharedRegistration {
    let gtid = SHARED_REG.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_mut() {
            Some((reg, count)) => {
                *count += 1;
                reg.gtid()
            }
            None => {
                let reg = Registry::global().register_current();
                let gtid = reg.gtid();
                *slot = Some((reg, 1));
                gtid
            }
        }
    });
    SharedRegistration {
        gtid,
        _not_send: core::marker::PhantomData,
    }
}

impl Drop for SharedRegistration {
    fn drop(&mut self) {
        // At thread exit the TLS cell may already be destructed; in that
        // case the inner ThreadRegistration's own destructor has run and
        // the slot is released — nothing left to do.
        let _ = SHARED_REG.try_with(|cell| {
            let mut slot = cell.borrow_mut();
            if let Some((_, count)) = slot.as_mut() {
                *count -= 1;
                if *count == 0 {
                    *slot = None;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn register_and_find_self() {
        let reg = Registry::global();
        let guard = reg.register_current();
        assert!(reg.is_active(guard.gtid()));
        assert_eq!(reg.find_current(), Some(guard.gtid()));
        let gtid = guard.gtid();
        drop(guard);
        assert!(!reg.is_active(gtid));
    }

    #[test]
    fn distinct_threads_distinct_gtids() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let seen = Arc::clone(&seen);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let g = Registry::global().register_current();
                seen.lock().unwrap().push(g.gtid());
                // Hold all registrations live simultaneously so ids can't be
                // recycled between threads.
                barrier.wait();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut v = seen.lock().unwrap().clone();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 8, "gtids must be unique while concurrently held");
    }

    #[test]
    fn slot_reuse_after_deregister() {
        let reg = Registry::global();
        let g1 = reg.register_current();
        let gtid1 = g1.gtid();
        drop(g1);
        // Same thread re-registering typically reclaims the lowest free slot.
        let g2 = reg.register_current();
        assert!(g2.gtid() <= gtid1 || reg.is_active(g2.gtid()));
    }

    #[test]
    fn shared_registration_refcounts() {
        std::thread::spawn(|| {
            let a = crate::registry::register_current_shared();
            let b = crate::registry::register_current_shared();
            assert_eq!(a.gtid(), b.gtid(), "one slot per thread");
            let gtid = a.gtid();
            drop(a);
            assert!(
                Registry::global().is_active(gtid),
                "slot must stay active while one handle lives"
            );
            drop(b);
            assert!(
                !Registry::global().is_active(gtid),
                "slot released when last handle drops"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn ping_inactive_slot_is_noop() {
        let reg = Registry::global();
        // Find a definitely-inactive slot near the top of the table.
        assert_eq!(
            reg.ping(MAX_THREADS - 1, libc::SIGUSR1),
            PingOutcome::Inactive
        );
    }

    #[test]
    fn stale_generation_probes_vacated() {
        let reg = Registry::global();
        let g1 = reg.register_current();
        let gtid = g1.gtid();
        let gen = reg.generation_of(gtid);
        assert_eq!(reg.probe(gtid, gen), Liveness::Alive);
        drop(g1);
        assert_eq!(
            reg.probe(gtid, gen),
            Liveness::Vacated,
            "a cleanly deregistered registration is vacated, not dead"
        );
        assert!(!reg.reap(gtid, gen), "nothing to reap after deregistration");
        let g2 = reg.register_current();
        if g2.gtid() == gtid {
            assert!(
                reg.generation_of(gtid) > gen,
                "reclaiming a slot must advance its generation"
            );
            assert_eq!(
                reg.probe(gtid, gen),
                Liveness::Vacated,
                "the old generation must not see the new occupant as itself"
            );
        }
    }

    #[test]
    fn dead_registration_is_probed_and_reaped() {
        let reg = Registry::global();
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            let g = Registry::global().register_current();
            tx.send((g.gtid(), Registry::global().generation_of(g.gtid())))
                .unwrap();
            // Die without deregistering — the failure mode the reaper exists
            // for. The slot stays active with a soon-dead pthread_t.
            std::mem::forget(g);
        });
        let (gtid, gen) = rx.recv().unwrap();
        // Probe while the thread is exited but unjoined (pthread_t still
        // valid); spin until the OS reports it gone.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match reg.probe(gtid, gen) {
                Liveness::Dead => break,
                Liveness::Alive => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "dead registration never probed as Dead"
                    );
                    std::thread::yield_now();
                }
                Liveness::Vacated => panic!("forgotten registration must stay claimed"),
            }
        }
        assert!(reg.is_active(gtid), "slot leaked by the dead thread");
        // glibc < 2.35 reports ESRCH (Dead); ≥ 2.35 silently no-ops (Sent).
        // Either way the ping must not be swallowed as an error.
        assert!(
            matches!(
                reg.ping(gtid, libc::SIGUSR1),
                PingOutcome::Dead | PingOutcome::Sent
            ),
            "pinging a dead-but-unjoined thread must not error"
        );
        assert!(reg.reap(gtid, gen), "reap must recover the leaked slot");
        assert!(!reg.is_active(gtid));
        assert!(!reg.reap(gtid, gen), "reap is one-shot");
        assert_eq!(reg.probe(gtid, gen), Liveness::Vacated);
        h.join().unwrap();
    }

    #[test]
    fn ping_self_delivers() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        struct CountPublisher;
        impl crate::signal::Publisher for CountPublisher {
            fn publish(&self, _gtid: usize) {
                HITS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let reg = Registry::global();
        let guard = reg.register_current();
        let handle = crate::signal::register_publisher(Box::leak(Box::new(CountPublisher)));
        let before = HITS.load(Ordering::SeqCst);
        assert_eq!(
            reg.ping(guard.gtid(), crate::signal::PING_SIGNAL),
            PingOutcome::Sent
        );
        // Signal to self is delivered synchronously before pthread_kill
        // returns on Linux, but be defensive and spin briefly.
        let mut spins = 0u32;
        while HITS.load(Ordering::SeqCst) == before && spins < 1_000_000 {
            core::hint::spin_loop();
            spins += 1;
        }
        assert!(HITS.load(Ordering::SeqCst) > before);
        handle.deactivate();
    }
}
