//! Thin, async-signal-safe `futex(2)` wrappers for publish-wait parking.
//!
//! Publish-on-ping reclaimers wait for pinged peers' signal handlers to
//! bump a publish counter. A bounded spin followed by `yield_now` burns a
//! scheduler quantum per retry on oversubscribed hosts; parking on a
//! `FUTEX_WAIT` keyed to a per-thread 32-bit publish word lets the kernel
//! wake the reclaimer the moment the handler publishes (`FUTEX_WAKE`),
//! with no quantum burned in between.
//!
//! Both operations are single syscalls on pre-existing atomics — no
//! allocation, no locks — so [`wake_all`] is safe to call from the ping
//! signal handler. On non-Linux targets the module degrades to the
//! portable behavior: [`supported`] is `false`, [`wait_timeout`] yields,
//! and [`wake_all`] is a no-op, so callers can use one code path.
//!
//! All waits take a timeout: the waiter's exit condition may become true
//! through a path that never wakes the word (e.g. a peer deregistering
//! after the waiter parked, or signal delivery failing), so the timeout —
//! not the wake — is the liveness backstop. The [`WaitOutcome`] tells the
//! caller's re-check loop whether the timeout actually elapsed
//! ([`WaitOutcome::TimedOut`]) or the return was a wake / `EINTR` /
//! `EAGAIN` ([`WaitOutcome::Woken`]) — so a spurious wake is never
//! miscounted as waited-out time by deadline accounting.

use core::sync::atomic::AtomicU32;

use crate::faults::{self, FaultSite};

/// Why a [`wait_timeout`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// Woken, interrupted, or the word already differed (`EAGAIN`) — the
    /// caller should re-check its predicate; no waited time is charged.
    Woken,
    /// The full timeout elapsed with no wake (`ETIMEDOUT`).
    TimedOut,
}

/// Whether parking on a futex is available on this target.
#[inline]
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

/// Parks the calling thread until `word != expected`, a wake arrives, the
/// timeout elapses, or a signal interrupts — whichever happens first.
/// Spurious returns are expected; callers re-check their condition and use
/// the [`WaitOutcome`] to decide whether to charge the wait against a
/// deadline.
#[cfg(target_os = "linux")]
pub fn wait_timeout(word: &AtomicU32, expected: u32, timeout_ns: u64) -> WaitOutcome {
    // Fault site: the kernel is allowed to return spuriously at any time;
    // this makes it do so relentlessly.
    if faults::fire(FaultSite::FutexSpuriousWake) {
        return WaitOutcome::Woken;
    }
    let ts = libc::timespec {
        tv_sec: (timeout_ns / 1_000_000_000) as libc::c_long,
        tv_nsec: (timeout_ns % 1_000_000_000) as libc::c_long,
    };
    // SAFETY: `word` outlives the call and is 4-byte aligned (AtomicU32);
    // the kernel only reads the timespec.
    let rc = unsafe {
        libc::syscall(
            libc::SYS_futex,
            word.as_ptr(),
            libc::FUTEX_WAIT | libc::FUTEX_PRIVATE_FLAG,
            expected,
            &ts as *const libc::timespec,
        )
    };
    if rc == 0 {
        return WaitOutcome::Woken;
    }
    match unsafe { *libc::__errno_location() } {
        libc::ETIMEDOUT => WaitOutcome::TimedOut,
        // EINTR (signal), EAGAIN (word already changed) and anything else:
        // the predicate may have become true — re-check, charge nothing.
        _ => WaitOutcome::Woken,
    }
}

/// Portable fallback: donate the quantum instead of parking. Reported as
/// [`WaitOutcome::Woken`] — a yield consumes no measurable deadline, so
/// callers fall through to their wall-clock check.
#[cfg(not(target_os = "linux"))]
pub fn wait_timeout(_word: &AtomicU32, _expected: u32, _timeout_ns: u64) -> WaitOutcome {
    if faults::fire(FaultSite::FutexSpuriousWake) {
        return WaitOutcome::Woken;
    }
    std::thread::yield_now();
    WaitOutcome::Woken
}

/// Wakes every thread parked on `word`. Async-signal-safe (one syscall).
#[cfg(target_os = "linux")]
pub fn wake_all(word: &AtomicU32) {
    // Fault site: a lost wake — waiters must survive on their timeout
    // backstop alone.
    if faults::fire(FaultSite::FutexLostWake) {
        return;
    }
    // SAFETY: `word` outlives the call; FUTEX_WAKE reads no user memory
    // beyond the address itself.
    unsafe {
        libc::syscall(
            libc::SYS_futex,
            word.as_ptr(),
            libc::FUTEX_WAKE | libc::FUTEX_PRIVATE_FLAG,
            i32::MAX,
        );
    }
}

/// Portable fallback: nothing is ever parked, so nothing to wake.
#[cfg(not(target_os = "linux"))]
pub fn wake_all(word: &AtomicU32) {
    let _ = faults::fire(FaultSite::FutexLostWake);
    let _ = word;
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Fault plans are process-global; when the feature is compiled in,
    /// serialize outcome-sensitive tests against tests that install plans.
    fn shield() -> Option<std::sync::MutexGuard<'static, ()>> {
        #[cfg(feature = "fault-injection")]
        return Some(crate::faults::test_lock());
        #[cfg(not(feature = "fault-injection"))]
        None
    }

    #[test]
    fn wait_returns_immediately_on_stale_expected() {
        let _shield = shield();
        // Word already differs from `expected`: FUTEX_WAIT must fail with
        // EAGAIN instead of sleeping out the full timeout — and EAGAIN is
        // not a timeout, so no waited time may be charged.
        let word = AtomicU32::new(7);
        let t0 = Instant::now();
        let out = wait_timeout(&word, 3, 200_000_000);
        assert!(
            t0.elapsed() < Duration::from_millis(150),
            "stale expected value must not park"
        );
        if supported() {
            assert_eq!(out, WaitOutcome::Woken, "EAGAIN is not a timeout");
        }
    }

    #[test]
    fn wake_unparks_a_waiter_before_timeout() {
        let _shield = shield();
        let word = Arc::new(AtomicU32::new(0));
        let t0 = Instant::now();
        let waiter = std::thread::spawn({
            let word = Arc::clone(&word);
            move || {
                while word.load(Ordering::Acquire) == 0 {
                    wait_timeout(&word, 0, 2_000_000_000);
                }
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::Release);
        wake_all(&word);
        waiter.join().unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(1500),
            "wake must beat the 2s timeout"
        );
    }

    #[test]
    fn timeout_is_a_liveness_backstop_and_reports_timed_out() {
        let _shield = shield();
        // Nobody ever wakes the word; the wait must still return, and on
        // Linux must say the timeout elapsed.
        let word = AtomicU32::new(0);
        let t0 = Instant::now();
        let out = wait_timeout(&word, 0, 30_000_000);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "timed wait must return without a wake"
        );
        if supported() {
            assert_eq!(out, WaitOutcome::TimedOut);
        }
    }

    /// Satellite coverage: the two fault hooks drive the two outcome paths.
    /// A spurious wake returns `Woken` without consuming the timeout; a
    /// lost wake leaves the waiter to ride out the timeout to `TimedOut`.
    #[cfg(feature = "fault-injection")]
    #[test]
    fn fault_hooks_distinguish_spurious_wake_from_timeout() {
        use crate::faults::{install, FaultPlan};
        // Installs process-global plans: hold the shared lock for the whole
        // test so parallel outcome-sensitive tests never see an armed site.
        let _shield = crate::faults::test_lock();
        let word = AtomicU32::new(0);

        install(FaultPlan::default().with_rate(FaultSite::FutexSpuriousWake, 1));
        let t0 = Instant::now();
        let out = wait_timeout(&word, 0, 2_000_000_000);
        assert_eq!(out, WaitOutcome::Woken, "injected spurious wake");
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "spurious wake must not consume the timeout"
        );
        assert!(faults::injected(FaultSite::FutexSpuriousWake) >= 1);

        install(FaultPlan::default().with_rate(FaultSite::FutexLostWake, 1));
        wake_all(&word); // swallowed
        assert!(faults::injected(FaultSite::FutexLostWake) >= 1);
        if supported() {
            let out = wait_timeout(&word, 0, 20_000_000);
            assert_eq!(
                out,
                WaitOutcome::TimedOut,
                "with the wake lost, only the timeout can end the wait"
            );
        }
        faults::clear();
    }
}
