//! Thin, async-signal-safe `futex(2)` wrappers for publish-wait parking.
//!
//! Publish-on-ping reclaimers wait for pinged peers' signal handlers to
//! bump a publish counter. A bounded spin followed by `yield_now` burns a
//! scheduler quantum per retry on oversubscribed hosts; parking on a
//! `FUTEX_WAIT` keyed to a per-thread 32-bit publish word lets the kernel
//! wake the reclaimer the moment the handler publishes (`FUTEX_WAKE`),
//! with no quantum burned in between.
//!
//! Both operations are single syscalls on pre-existing atomics — no
//! allocation, no locks — so [`wake_all`] is safe to call from the ping
//! signal handler. On non-Linux targets the module degrades to the
//! portable behavior: [`supported`] is `false`, [`wait_timeout`] yields,
//! and [`wake_all`] is a no-op, so callers can use one code path.
//!
//! All waits take a timeout: the waiter's exit condition may become true
//! through a path that never wakes the word (e.g. a peer deregistering
//! after the waiter parked, or signal delivery failing), so the timeout —
//! not the wake — is the liveness backstop. `EINTR`/`EAGAIN` are simply
//! returned to the caller's re-check loop.

use core::sync::atomic::AtomicU32;

/// Whether parking on a futex is available on this target.
#[inline]
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

/// Parks the calling thread until `word != expected`, a wake arrives, the
/// timeout elapses, or a signal interrupts — whichever happens first.
/// Spurious returns are expected; callers re-check their condition.
#[cfg(target_os = "linux")]
pub fn wait_timeout(word: &AtomicU32, expected: u32, timeout_ns: u64) {
    let ts = libc::timespec {
        tv_sec: (timeout_ns / 1_000_000_000) as libc::c_long,
        tv_nsec: (timeout_ns % 1_000_000_000) as libc::c_long,
    };
    // SAFETY: `word` outlives the call and is 4-byte aligned (AtomicU32);
    // the kernel only reads the timespec.
    unsafe {
        libc::syscall(
            libc::SYS_futex,
            word.as_ptr(),
            libc::FUTEX_WAIT | libc::FUTEX_PRIVATE_FLAG,
            expected,
            &ts as *const libc::timespec,
        );
    }
}

/// Portable fallback: donate the quantum instead of parking.
#[cfg(not(target_os = "linux"))]
pub fn wait_timeout(_word: &AtomicU32, _expected: u32, _timeout_ns: u64) {
    std::thread::yield_now();
}

/// Wakes every thread parked on `word`. Async-signal-safe (one syscall).
#[cfg(target_os = "linux")]
pub fn wake_all(word: &AtomicU32) {
    // SAFETY: `word` outlives the call; FUTEX_WAKE reads no user memory
    // beyond the address itself.
    unsafe {
        libc::syscall(
            libc::SYS_futex,
            word.as_ptr(),
            libc::FUTEX_WAKE | libc::FUTEX_PRIVATE_FLAG,
            i32::MAX,
        );
    }
}

/// Portable fallback: nothing is ever parked, so nothing to wake.
#[cfg(not(target_os = "linux"))]
pub fn wake_all(_word: &AtomicU32) {}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn wait_returns_immediately_on_stale_expected() {
        // Word already differs from `expected`: FUTEX_WAIT must fail with
        // EAGAIN instead of sleeping out the full timeout.
        let word = AtomicU32::new(7);
        let t0 = Instant::now();
        wait_timeout(&word, 3, 200_000_000);
        assert!(
            t0.elapsed() < Duration::from_millis(150),
            "stale expected value must not park"
        );
    }

    #[test]
    fn wake_unparks_a_waiter_before_timeout() {
        let word = Arc::new(AtomicU32::new(0));
        let t0 = Instant::now();
        let waiter = std::thread::spawn({
            let word = Arc::clone(&word);
            move || {
                while word.load(Ordering::Acquire) == 0 {
                    wait_timeout(&word, 0, 2_000_000_000);
                }
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::Release);
        wake_all(&word);
        waiter.join().unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(1500),
            "wake must beat the 2s timeout"
        );
    }

    #[test]
    fn timeout_is_a_liveness_backstop() {
        // Nobody ever wakes the word; the wait must still return.
        let word = AtomicU32::new(0);
        let t0 = Instant::now();
        wait_timeout(&word, 0, 30_000_000);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "timed wait must return without a wake"
        );
    }
}
