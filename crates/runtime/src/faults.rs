//! Deterministic fault injection for the signal/futex/publish paths.
//!
//! A [`FaultPlan`] names a PRNG seed plus, per [`FaultSite`], either a
//! `1-in-N` firing rate or a one-shot trigger ("fire on exactly the K-th
//! check"). The instrumented sites — signal delivery, futex wake/wait and
//! the publish path — each call [`fire`] at their decision point; the rest
//! of the crate never knows whether a plan is installed.
//!
//! Everything here compiles to a constant-`false` no-op unless the
//! `fault-injection` cargo feature is enabled, so the production build pays
//! nothing (acceptance-checked against the bench smoke baseline). With the
//! feature on, state is process-global (the sites it instruments are
//! process-global too) and every helper is async-signal-safe: plain atomics
//! only, no locks, no allocation — [`fire`] is reachable from the `SIGUSR1`
//! handler.
//!
//! Plans come from [`install`] (tests) or the `POP_FAULTS` environment
//! variable (CI chaos legs), parsed once by [`init_from_env`]:
//!
//! ```text
//! POP_FAULTS="seed=7,signal_drop=1/8,futex_lost_wake=1/4,thread_death=@40"
//! ```
//!
//! `site=1/N` fires pseudo-randomly once every N checks on average,
//! `site=always` on every check, and `site=@K` exactly once, on the K-th
//! check of that site (1-based).

#[cfg(feature = "fault-injection")]
use core::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// An instrumented failure point. The table below is the contract between
/// the plan vocabulary and the code paths that honor it:
///
/// | site | checked in | effect when fired |
/// |------|-----------|-------------------|
/// | `SignalDrop` | `signal::on_ping` | ping delivered, publish suppressed (models a blocked mask / lost delivery) |
/// | `SignalDelay` | `signal::ping_gtid` | sender stalls ~50 µs before `pthread_kill` |
/// | `FutexLostWake` | `futex::wake_all` | wake syscall skipped — waiters ride out their timeout |
/// | `FutexSpuriousWake` | `futex::wait_timeout` | returns [`crate::futex::WaitOutcome::Woken`] without parking |
/// | `PublishDelay` | `PopShared::publish_tid` (pop-core) | bounded spin before the local→shared copy |
/// | `ThreadDeath` | cooperative: harness workers poll [`should_die`] | worker abandons its registration and exits |
/// | `MembarrierUnavailable` | `membarrier::is_available` | availability probe reports the syscall missing (models seccomp/container denial) |
/// | `MembarrierFail` | `membarrier::heavy` | a heavy barrier fails mid-pass — callers must downgrade to the signal path |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultSite {
    /// Suppress the publish a delivered ping would have performed.
    SignalDrop = 0,
    /// Delay the sender before `pthread_kill`.
    SignalDelay = 1,
    /// Swallow a `FUTEX_WAKE`.
    FutexLostWake = 2,
    /// Turn a `FUTEX_WAIT` into an immediate spurious return.
    FutexSpuriousWake = 3,
    /// Stall the signal handler's local→shared reservation copy.
    PublishDelay = 4,
    /// Tell a cooperating worker thread to die without unregistering.
    ThreadDeath = 5,
    /// Make the membarrier availability probe report "unsupported".
    MembarrierUnavailable = 6,
    /// Fail a heavy membarrier mid-pass (forces a downgrade to signals).
    MembarrierFail = 7,
}

/// Number of distinct [`FaultSite`]s.
pub const SITE_COUNT: usize = 8;

impl FaultSite {
    /// Every site, in `repr` order.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::SignalDrop,
        FaultSite::SignalDelay,
        FaultSite::FutexLostWake,
        FaultSite::FutexSpuriousWake,
        FaultSite::PublishDelay,
        FaultSite::ThreadDeath,
        FaultSite::MembarrierUnavailable,
        FaultSite::MembarrierFail,
    ];

    /// The `POP_FAULTS` key naming this site.
    pub fn key(self) -> &'static str {
        match self {
            FaultSite::SignalDrop => "signal_drop",
            FaultSite::SignalDelay => "signal_delay",
            FaultSite::FutexLostWake => "futex_lost_wake",
            FaultSite::FutexSpuriousWake => "futex_spurious_wake",
            FaultSite::PublishDelay => "publish_delay",
            FaultSite::ThreadDeath => "thread_death",
            FaultSite::MembarrierUnavailable => "membarrier_unavailable",
            FaultSite::MembarrierFail => "membarrier_fail",
        }
    }

    fn from_key(k: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.key() == k)
    }
}

/// Per-site trigger: a pseudo-random rate, or one shot on the K-th check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteTrigger {
    /// Fire with probability `1/rate` per check (0 = never).
    pub rate: u32,
    /// Fire exactly once, on this (1-based) check of the site (0 = off).
    pub one_shot_at: u64,
}

/// A parsed fault plan: seed plus one [`SiteTrigger`] per site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed for the rate-based triggers.
    pub seed: u64,
    /// Triggers indexed by `FaultSite as usize`.
    pub sites: [SiteTrigger; SITE_COUNT],
}

impl FaultPlan {
    /// Sets a pseudo-random `1-in-rate` trigger for `site`.
    pub fn with_rate(mut self, site: FaultSite, rate: u32) -> Self {
        self.sites[site as usize].rate = rate;
        self
    }

    /// Sets a one-shot trigger on the `nth` (1-based) check of `site`.
    pub fn with_one_shot(mut self, site: FaultSite, nth: u64) -> Self {
        self.sites[site as usize].one_shot_at = nth;
        self
    }

    /// Parses the `POP_FAULTS` syntax (see the module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            if key == "seed" {
                plan.seed = val
                    .parse()
                    .map_err(|_| format!("bad seed `{val}` in fault spec"))?;
                continue;
            }
            let site =
                FaultSite::from_key(key).ok_or_else(|| format!("unknown fault site `{key}`"))?;
            let trig = &mut plan.sites[site as usize];
            if val == "always" {
                trig.rate = 1;
            } else if let Some(nth) = val.strip_prefix('@') {
                trig.one_shot_at = nth
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("bad one-shot `{val}` for `{key}`"))?;
            } else if let Some((one, n)) = val.split_once('/') {
                if one != "1" {
                    return Err(format!("rate `{val}` for `{key}` must be 1/N"));
                }
                trig.rate = n
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("bad rate `{val}` for `{key}`"))?;
            } else {
                return Err(format!("bad trigger `{val}` for `{key}`"));
            }
        }
        Ok(plan)
    }
}

#[cfg(feature = "fault-injection")]
struct SiteState {
    rate: AtomicU32,
    one_shot_at: AtomicU64,
    checks: AtomicU64,
    injected: AtomicU64,
}

#[cfg(feature = "fault-injection")]
#[allow(clippy::declare_interior_mutable_const)]
const SITE_STATE_INIT: SiteState = SiteState {
    rate: AtomicU32::new(0),
    one_shot_at: AtomicU64::new(0),
    checks: AtomicU64::new(0),
    injected: AtomicU64::new(0),
};

#[cfg(feature = "fault-injection")]
static ACTIVE: AtomicBool = AtomicBool::new(false);
#[cfg(feature = "fault-injection")]
static RNG: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "fault-injection")]
static SITES: [SiteState; SITE_COUNT] = [SITE_STATE_INIT; SITE_COUNT];

/// Installs `plan` process-wide, resetting all per-site counters. Passing
/// an all-default plan disarms every site (same as [`clear`]).
#[cfg(feature = "fault-injection")]
pub fn install(plan: FaultPlan) {
    // Disarm first so concurrent `fire` calls see either the old plan or
    // the new one, never a half-written mix armed.
    ACTIVE.store(false, Ordering::SeqCst);
    RNG.store(plan.seed, Ordering::SeqCst);
    let mut any = false;
    for (i, s) in SITES.iter().enumerate() {
        let t = plan.sites[i];
        s.rate.store(t.rate, Ordering::SeqCst);
        s.one_shot_at.store(t.one_shot_at, Ordering::SeqCst);
        s.checks.store(0, Ordering::SeqCst);
        s.injected.store(0, Ordering::SeqCst);
        any |= t.rate != 0 || t.one_shot_at != 0;
    }
    ACTIVE.store(any, Ordering::SeqCst);
}

/// Disarms every site and zeroes the counters.
pub fn clear() {
    install(FaultPlan::default());
}

/// Parses and installs `POP_FAULTS` once per process (no-op when unset or
/// already initialized; a malformed spec panics — a chaos run with a typo'd
/// plan must not silently test nothing).
#[cfg(feature = "fault-injection")]
pub fn init_from_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if let Ok(spec) = std::env::var("POP_FAULTS") {
            match FaultPlan::parse(&spec) {
                Ok(plan) => install(plan),
                Err(e) => panic!("POP_FAULTS: {e}"),
            }
        }
    });
}

/// splitmix64 step over a shared atomic state: deterministic per seed up to
/// thread interleaving, and async-signal-safe.
#[cfg(feature = "fault-injection")]
#[inline]
fn next_rand() -> u64 {
    let mut x = RNG
        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Should `site` fail right now? One call per decision point; counts the
/// check and, on a hit, the injection.
#[cfg(feature = "fault-injection")]
#[inline]
pub fn fire(site: FaultSite) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let s = &SITES[site as usize];
    let nth = s.checks.fetch_add(1, Ordering::Relaxed) + 1;
    let shot = s.one_shot_at.load(Ordering::Relaxed);
    let hit = if shot != 0 {
        nth == shot
    } else {
        match s.rate.load(Ordering::Relaxed) {
            0 => false,
            1 => true,
            n => next_rand().is_multiple_of(n as u64),
        }
    };
    if hit {
        s.injected.fetch_add(1, Ordering::Relaxed);
    }
    hit
}

/// Convenience for cooperative thread-death: workers poll this between
/// operations and, on `true`, abandon their registration and exit.
#[inline]
pub fn should_die() -> bool {
    fire(FaultSite::ThreadDeath)
}

/// Faults injected at `site` since the last [`install`].
#[cfg(feature = "fault-injection")]
pub fn injected(site: FaultSite) -> u64 {
    SITES[site as usize].injected.load(Ordering::Relaxed)
}

/// Total faults injected across all sites since the last [`install`].
#[cfg(feature = "fault-injection")]
pub fn injected_total() -> u64 {
    FaultSite::ALL.iter().map(|&s| injected(s)).sum()
}

/// Whether any site is currently armed.
#[cfg(feature = "fault-injection")]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Serializes tests that install process-global plans against tests whose
/// assertions an armed plan would distort (same-binary parallelism).
#[cfg(feature = "fault-injection")]
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Feature-off stubs: identical signatures, constant results, zero state.
// Call sites stay unconditional; the optimizer erases them entirely.
// ---------------------------------------------------------------------

/// No-op without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn install(_plan: FaultPlan) {}

/// No-op without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn init_from_env() {}

/// Always `false` without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fire(_site: FaultSite) -> bool {
    false
}

/// Always 0 without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn injected(_site: FaultSite) -> u64 {
    0
}

/// Always 0 without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn injected_total() -> u64 {
    0
}

/// Always `false` without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn active() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("seed=7,signal_drop=1/8,futex_lost_wake=always,thread_death=@40")
            .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.sites[FaultSite::SignalDrop as usize].rate, 8);
        assert_eq!(p.sites[FaultSite::FutexLostWake as usize].rate, 1);
        assert_eq!(p.sites[FaultSite::ThreadDeath as usize].one_shot_at, 40);
        assert_eq!(
            p.sites[FaultSite::PublishDelay as usize],
            SiteTrigger::default()
        );
    }

    #[test]
    fn parse_membarrier_sites() {
        let p = FaultPlan::parse("membarrier_unavailable=always,membarrier_fail=@3").unwrap();
        assert_eq!(p.sites[FaultSite::MembarrierUnavailable as usize].rate, 1);
        assert_eq!(p.sites[FaultSite::MembarrierFail as usize].one_shot_at, 3);
    }

    #[test]
    fn site_keys_round_trip() {
        for s in FaultSite::ALL {
            assert_eq!(FaultSite::from_key(s.key()), Some(s));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("no_such_site=1/2").is_err());
        assert!(FaultPlan::parse("signal_drop=2/3").is_err());
        assert!(FaultPlan::parse("signal_drop=@0").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn one_shot_fires_exactly_once_at_nth_check() {
        let _g = super::test_lock();
        install(FaultPlan::default().with_one_shot(FaultSite::ThreadDeath, 3));
        let hits: Vec<bool> = (0..6).map(|_| should_die()).collect();
        assert_eq!(hits, [false, false, true, false, false, false]);
        assert_eq!(injected(FaultSite::ThreadDeath), 1);
        clear();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn rate_one_fires_every_time_and_counts() {
        let _g = super::test_lock();
        install(FaultPlan::default().with_rate(FaultSite::SignalDrop, 1));
        for _ in 0..10 {
            assert!(fire(FaultSite::SignalDrop));
        }
        assert!(!fire(FaultSite::SignalDelay), "unarmed site stays quiet");
        assert_eq!(injected(FaultSite::SignalDrop), 10);
        assert_eq!(injected_total(), 10);
        clear();
        assert!(!active());
        assert!(!fire(FaultSite::SignalDrop));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn rate_n_fires_at_roughly_one_in_n() {
        let _g = super::test_lock();
        install(
            FaultPlan {
                seed: 42,
                ..Default::default()
            }
            .with_rate(FaultSite::PublishDelay, 4),
        );
        let hits = (0..4000).filter(|_| fire(FaultSite::PublishDelay)).count();
        assert!((500..=1500).contains(&hits), "1-in-4 over 4000: got {hits}");
        clear();
    }
}
