//! Linux `membarrier(2)` asymmetric process-wide memory barrier — the
//! runtime's expedited-barrier service.
//!
//! Readers publish reservations with plain (relaxed) stores and the
//! StoreLoad fence moves to the reclaimer, which executes a *process-wide*
//! barrier before scanning. On mainline Linux this is
//! `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)`, which IPIs every CPU
//! running a thread of this process. Both the `HPAsym` baseline and the
//! POP schemes' `PublishMode::Membarrier` fast path go through this one
//! module, so there is exactly one availability probe and one registration
//! per process.
//!
//! Availability varies (the paper §2.1.2 notes the same): the syscall may
//! be missing or restricted in sandboxes, seccomp-filtered containers and
//! old kernels. [`is_available`] answers the per-process probe (cached
//! after the first call, registration included) and [`heavy`] reports
//! per-call failure so callers can fall back to the signal-driven barrier
//! built from the ping machinery (liburcu's "signal flavor" — precisely
//! what `HazardPtrPOP`'s signal path already provides).
//!
//! Fault injection: [`crate::faults::FaultSite::MembarrierUnavailable`]
//! makes the probe answer "unsupported" (checked *outside* the cache so a
//! plan installed mid-process still bites), and
//! [`crate::faults::FaultSite::MembarrierFail`] fails a single heavy
//! barrier, exercising callers' mid-pass downgrade.

use std::sync::OnceLock;

const MEMBARRIER_CMD_QUERY: libc::c_long = 0;
const MEMBARRIER_CMD_PRIVATE_EXPEDITED: libc::c_long = 1 << 3;
const MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED: libc::c_long = 1 << 4;

#[cfg(target_os = "linux")]
fn sys_membarrier(cmd: libc::c_long) -> libc::c_long {
    // SAFETY: membarrier takes (cmd, flags, cpu_id); flags=0 selects the
    // process-wide variant and has no memory-safety implications.
    unsafe {
        libc::syscall(
            libc::SYS_membarrier,
            cmd,
            0 as libc::c_long,
            0 as libc::c_long,
        )
    }
}

#[cfg(not(target_os = "linux"))]
fn sys_membarrier(_cmd: libc::c_long) -> libc::c_long {
    -1
}

/// The kernel-truth half of the probe, cached for the process lifetime
/// (registration is a per-process one-shot and must not repeat).
fn probe() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        let supported = sys_membarrier(MEMBARRIER_CMD_QUERY);
        if supported < 0 || supported & MEMBARRIER_CMD_PRIVATE_EXPEDITED == 0 {
            return false;
        }
        // Registration is required before the expedited command may be used.
        sys_membarrier(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) == 0
    })
}

/// Returns whether `PRIVATE_EXPEDITED` membarrier is usable, registering
/// the process on first call. The kernel answer is cached for the process
/// lifetime; the [`MembarrierUnavailable`](crate::faults::FaultSite)
/// fault-injection site is consulted on every call, so chaos plans can
/// model a seccomp denial without poisoning the cache for other tests.
pub fn is_available() -> bool {
    if crate::faults::fire(crate::faults::FaultSite::MembarrierUnavailable) {
        return false;
    }
    probe()
}

/// Executes the heavyweight side of the asymmetric barrier.
///
/// On success, every thread of this process has executed a full memory
/// barrier between the caller's preceding and following memory accesses —
/// i.e. all of their prior relaxed stores are visible to the caller.
/// Returns `false` when the syscall is unavailable or fails (including an
/// injected [`MembarrierFail`](crate::faults::FaultSite)); callers must
/// then run a signal-driven barrier for this pass instead.
pub fn heavy() -> bool {
    if !is_available() {
        return false;
    }
    if crate::faults::fire(crate::faults::FaultSite::MembarrierFail) {
        return false;
    }
    sys_membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_is_stable() {
        // Whatever the sandbox supports, the cached answer must not flap.
        let a = is_available();
        let b = is_available();
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_matches_availability() {
        if is_available() {
            assert!(heavy(), "available membarrier must execute successfully");
        } else {
            assert!(!heavy(), "unavailable membarrier must report failure");
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_unavailability_is_transient() {
        use crate::faults::{self, FaultPlan, FaultSite};
        let _g = faults::test_lock();
        let baseline = probe();
        faults::install(FaultPlan::default().with_rate(FaultSite::MembarrierUnavailable, 1));
        assert!(!is_available(), "armed probe fault must report unsupported");
        assert!(!heavy(), "heavy follows the (faulted) probe");
        faults::clear();
        assert_eq!(is_available(), baseline, "cache survives the fault");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_heavy_failure_is_one_shot() {
        use crate::faults::{self, FaultPlan, FaultSite};
        let _g = faults::test_lock();
        if !probe() {
            return; // nothing to fail on hosts without membarrier
        }
        faults::install(FaultPlan::default().with_one_shot(FaultSite::MembarrierFail, 1));
        assert!(!heavy(), "first heavy barrier fails by injection");
        assert!(heavy(), "subsequent barriers succeed again");
        faults::clear();
    }
}
