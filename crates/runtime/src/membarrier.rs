//! Linux `membarrier(2)` asymmetric process-wide memory barrier.
//!
//! The Folly-style `HPAsym` baseline lets readers publish hazard pointers
//! with plain (relaxed) stores and moves the StoreLoad fence to the
//! reclaimer, which executes a *process-wide* barrier before scanning
//! reservations. On mainline Linux this is
//! `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)`, which IPIs every CPU
//! running a thread of this process.
//!
//! Availability varies (the paper §2.1.2 notes the same): the syscall may be
//! missing or restricted in sandboxes and old kernels. [`heavy`] reports
//! failure so callers can fall back to the signal-driven barrier built from
//! the ping machinery (liburcu's "signal flavor" — precisely what
//! `HazardPtrPOP` already provides).

use std::sync::OnceLock;

const MEMBARRIER_CMD_QUERY: libc::c_long = 0;
const MEMBARRIER_CMD_PRIVATE_EXPEDITED: libc::c_long = 1 << 3;
const MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED: libc::c_long = 1 << 4;

#[cfg(target_os = "linux")]
fn sys_membarrier(cmd: libc::c_long) -> libc::c_long {
    // SAFETY: membarrier takes (cmd, flags, cpu_id); flags=0 selects the
    // process-wide variant and has no memory-safety implications.
    unsafe {
        libc::syscall(
            libc::SYS_membarrier,
            cmd,
            0 as libc::c_long,
            0 as libc::c_long,
        )
    }
}

#[cfg(not(target_os = "linux"))]
fn sys_membarrier(_cmd: libc::c_long) -> libc::c_long {
    -1
}

/// Returns whether `PRIVATE_EXPEDITED` membarrier is usable, registering
/// the process on first call. Cached for the process lifetime.
pub fn is_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        let supported = sys_membarrier(MEMBARRIER_CMD_QUERY);
        if supported < 0 || supported & MEMBARRIER_CMD_PRIVATE_EXPEDITED == 0 {
            return false;
        }
        // Registration is required before the expedited command may be used.
        sys_membarrier(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) == 0
    })
}

/// Executes the heavyweight side of the asymmetric barrier.
///
/// On success, every thread of this process has executed a full memory
/// barrier between the caller's preceding and following memory accesses —
/// i.e. all of their prior relaxed stores are visible to the caller.
/// Returns `false` when the syscall is unavailable; callers must then use a
/// signal-driven barrier instead.
pub fn heavy() -> bool {
    if !is_available() {
        return false;
    }
    sys_membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_is_stable() {
        // Whatever the sandbox supports, the cached answer must not flap.
        let a = is_available();
        let b = is_available();
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_matches_availability() {
        if is_available() {
            assert!(heavy(), "available membarrier must execute successfully");
        } else {
            assert!(!heavy(), "unavailable membarrier must report failure");
        }
    }
}
