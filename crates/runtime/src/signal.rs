//! Process-global ping signal and publisher dispatch.
//!
//! Publish-on-ping domains (one per reclamation-scheme instance) register a
//! [`Publisher`] here. When a reclaimer pings a thread, the process-global
//! `SIGUSR1` handler runs *on that thread*, determines the thread's global
//! id by scanning the [`crate::registry::Registry`] (never TLS — see module
//! docs there), and invokes `publish(gtid)` on **every** active publisher.
//!
//! Publishing for more domains than the pinging reclaimer cares about is
//! harmless and implements the paper's observation that concurrent pings
//! coalesce: one handler execution satisfies every reclaimer that collected
//! publish counters before it ran.
//!
//! ## Lifetime rules
//!
//! Publishers are `&'static`: a handler interrupted mid-dispatch may hold a
//! publisher reference for an unbounded time, so publisher state is never
//! deallocated. Domains that shut down call [`PublisherHandle::deactivate`],
//! which stops future dispatches; the backing memory is intentionally leaked
//! by the owning domain (a few KB per domain, bounded by
//! [`MAX_PUBLISHERS`]).

use core::mem;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Once;

use crate::faults::{self, FaultSite};
use crate::registry::{try_global, PingOutcome, Registry};

/// The signal used for pings. `SIGUSR1` mirrors the NBR/POP artifact.
pub const PING_SIGNAL: i32 = libc::SIGUSR1;

/// Upper bound on publisher registrations over the process lifetime.
///
/// Registrations are never recycled (see module docs); test suites create a
/// domain per scheme instance, so this is sized generously.
pub const MAX_PUBLISHERS: usize = 4096;

/// An async-signal-safe reservation publisher.
///
/// # Contract
///
/// `publish` runs inside a signal handler on an arbitrary registered thread.
/// It must restrict itself to atomic loads/stores and fences: no allocation,
/// no locking, no panicking, no TLS.
pub trait Publisher: Sync {
    /// Publish the calling thread's private reservations for global thread
    /// id `gtid`, then make them visible (fence + counter increment).
    fn publish(&self, gtid: usize);
}

type Thunk = unsafe fn(*const (), usize);

struct PubSlot {
    data: AtomicPtr<()>,
    call: AtomicUsize,
    active: AtomicBool,
}

impl PubSlot {
    const fn new() -> Self {
        PubSlot {
            data: AtomicPtr::new(core::ptr::null_mut()),
            call: AtomicUsize::new(0),
            active: AtomicBool::new(false),
        }
    }
}

static PUBLISHERS: [PubSlot; MAX_PUBLISHERS] = [const { PubSlot::new() }; MAX_PUBLISHERS];
static PUB_COUNT: AtomicUsize = AtomicUsize::new(0);

unsafe fn call_thunk<P: Publisher>(data: *const (), gtid: usize) {
    // SAFETY: `data` was produced from a `&'static P` in `register_publisher`
    // and publisher memory is never deallocated.
    unsafe { (*(data as *const P)).publish(gtid) }
}

/// Handle to a registered publisher; used to stop dispatches at shutdown.
pub struct PublisherHandle {
    idx: usize,
}

impl PublisherHandle {
    /// Stops future handler dispatches to this publisher.
    ///
    /// In-flight handler executions may still observe the publisher, which
    /// is why publisher state must be `'static`.
    pub fn deactivate(&self) {
        PUBLISHERS[self.idx].active.store(false, Ordering::Release);
    }

    /// Slot index, for diagnostics.
    pub fn index(&self) -> usize {
        self.idx
    }
}

/// Registers a publisher for dispatch on every future ping.
///
/// The `&'static` bound enforces the leak-on-shutdown lifetime rule.
pub fn register_publisher<P: Publisher + 'static>(publisher: &'static P) -> PublisherHandle {
    let idx = PUB_COUNT.fetch_add(1, Ordering::AcqRel);
    assert!(
        idx < MAX_PUBLISHERS,
        "pop-runtime: publisher registry exhausted ({MAX_PUBLISHERS})"
    );
    let slot = &PUBLISHERS[idx];
    slot.data.store(
        publisher as *const P as *const () as *mut (),
        Ordering::Relaxed,
    );
    slot.call
        .store(call_thunk::<P> as *const () as usize, Ordering::Relaxed);
    // Release: the data/call stores above become visible before any handler
    // observes the slot as active.
    slot.active.store(true, Ordering::Release);
    PublisherHandle { idx }
}

/// Number of publisher slots ever claimed (diagnostics).
pub fn publisher_count() -> usize {
    PUB_COUNT.load(Ordering::Relaxed).min(MAX_PUBLISHERS)
}

/// Dispatches every active publisher for `gtid`.
///
/// Async-signal-safe; also callable outside the handler (used by
/// deregistration paths to flush a departing thread's reservations).
pub fn publish_all(gtid: usize) {
    let n = publisher_count();
    for slot in PUBLISHERS.iter().take(n) {
        // Acquire pairs with the Release in `register_publisher`.
        if slot.active.load(Ordering::Acquire) {
            let call = slot.call.load(Ordering::Relaxed);
            let data = slot.data.load(Ordering::Relaxed);
            if call != 0 && !data.is_null() {
                // SAFETY: slot was fully initialized before `active` was
                // released, and publisher memory is never freed.
                let f: Thunk = unsafe { mem::transmute::<usize, Thunk>(call) };
                unsafe { f(data as *const (), gtid) };
            }
        }
    }
}

extern "C" fn on_ping(_sig: libc::c_int) {
    // Preserve errno across the handler: publishers only touch atomics, but
    // `pthread_self`/future extensions must not clobber interrupted syscalls.
    let saved_errno = unsafe { *libc::__errno_location() };
    // Fault site: a ping that is delivered but never publishes — models a
    // blocked mask / seccomp-suppressed handler. The waiting reclaimer's
    // publish-wait watchdog must absorb this (atomics only; signal-safe).
    if !faults::fire(FaultSite::SignalDrop) {
        if let Some(registry) = try_global() {
            if let Some(gtid) = registry.find_current() {
                publish_all(gtid);
            }
        }
    }
    unsafe { *libc::__errno_location() = saved_errno };
}

static INSTALL: Once = Once::new();

/// Installs the process-global ping handler (idempotent).
pub(crate) fn install_handler() {
    INSTALL.call_once(|| unsafe {
        let mut sa: libc::sigaction = mem::zeroed();
        sa.sa_sigaction = on_ping as *const () as usize;
        // SA_RESTART keeps interrupted slow syscalls (e.g. futex waits in
        // test harnesses) transparent to the rest of the program.
        sa.sa_flags = libc::SA_RESTART;
        libc::sigemptyset(&mut sa.sa_mask);
        let rc = libc::sigaction(PING_SIGNAL, &sa, core::ptr::null_mut());
        assert_eq!(rc, 0, "sigaction(SIGUSR1) failed");
    });
}

/// Pings the thread registered at `gtid` with [`PING_SIGNAL`].
///
/// Anything but [`PingOutcome::Sent`] means the caller must not wait for
/// that thread to publish: it deregistered ([`PingOutcome::Inactive`],
/// flushing on the way out), died without deregistering
/// ([`PingOutcome::Dead`] — reap it), or the send failed outright
/// ([`PingOutcome::Failed`]).
pub fn ping_gtid(gtid: usize) -> PingOutcome {
    if faults::fire(FaultSite::SignalDelay) {
        // Stall the sender long enough for the target to move (die, publish,
        // deregister) under the reclaimer's feet.
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
    Registry::global().ping(gtid, PING_SIGNAL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::AtomicU64;
    use std::sync::atomic::AtomicBool as StdAtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    struct CounterPublisher {
        hits: [AtomicU64; crate::registry::MAX_THREADS],
    }

    impl CounterPublisher {
        fn new() -> Self {
            CounterPublisher {
                hits: [const { AtomicU64::new(0) }; crate::registry::MAX_THREADS],
            }
        }
    }

    impl Publisher for CounterPublisher {
        fn publish(&self, gtid: usize) {
            core::sync::atomic::fence(Ordering::SeqCst);
            self.hits[gtid].fetch_add(1, Ordering::Release);
        }
    }

    #[test]
    fn publish_all_dispatches_registered_publishers() {
        let p: &'static CounterPublisher = Box::leak(Box::new(CounterPublisher::new()));
        let handle = register_publisher(p);
        publish_all(7);
        assert_eq!(p.hits[7].load(Ordering::Acquire), 1);
        publish_all(7);
        assert_eq!(p.hits[7].load(Ordering::Acquire), 2);
        handle.deactivate();
        publish_all(7);
        assert_eq!(
            p.hits[7].load(Ordering::Acquire),
            2,
            "deactivated publisher must not be dispatched"
        );
    }

    /// Fault plans are process-global; when the feature is compiled in, an
    /// armed `SignalDrop` site from a parallel test would suppress the
    /// publishes these tests wait on. Serialize against plan installers.
    fn shield() -> Option<std::sync::MutexGuard<'static, ()>> {
        #[cfg(feature = "fault-injection")]
        return Some(crate::faults::test_lock());
        #[cfg(not(feature = "fault-injection"))]
        None
    }

    #[test]
    fn cross_thread_ping_publishes() {
        let _shield = shield();
        let p: &'static CounterPublisher = Box::leak(Box::new(CounterPublisher::new()));
        let handle = register_publisher(p);
        let stop = Arc::new(StdAtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::channel();
        let stop2 = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let guard = Registry::global().register_current();
            tx.send(guard.gtid()).unwrap();
            while !stop2.load(Ordering::Acquire) {
                core::hint::spin_loop();
            }
        });
        let gtid = rx.recv().unwrap();
        let before = p.hits[gtid].load(Ordering::Acquire);
        assert_eq!(ping_gtid(gtid), PingOutcome::Sent);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while p.hits[gtid].load(Ordering::Acquire) == before {
            assert!(
                std::time::Instant::now() < deadline,
                "ping was not serviced within 5s"
            );
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        worker.join().unwrap();
        handle.deactivate();
    }

    #[test]
    fn repeated_pings_coalesce_monotonically() {
        let _shield = shield();
        let p: &'static CounterPublisher = Box::leak(Box::new(CounterPublisher::new()));
        let handle = register_publisher(p);
        let stop = Arc::new(StdAtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::channel();
        let stop2 = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let guard = Registry::global().register_current();
            tx.send(guard.gtid()).unwrap();
            while !stop2.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        });
        let gtid = rx.recv().unwrap();
        let mut last = p.hits[gtid].load(Ordering::Acquire);
        for _ in 0..16 {
            let before = last;
            assert_eq!(ping_gtid(gtid), PingOutcome::Sent);
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                let now = p.hits[gtid].load(Ordering::Acquire);
                if now > before {
                    last = now;
                    break;
                }
                assert!(std::time::Instant::now() < deadline);
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Release);
        worker.join().unwrap();
        handle.deactivate();
    }
}
