//! Anonymous virtual-memory mappings for the slab allocator.
//!
//! The slab allocator in `pop-core` needs three things the global allocator
//! cannot give it:
//!
//! 1. **Alignment to the slab size** (64 KiB), so a slot pointer recovers its
//!    slab header with one mask — the owned-arena replacement for the
//!    `ARENA_SHIFT` high-bit guess in the retire pipeline.
//! 2. **Page-granular release**: a fully-empty slab hands its payload pages
//!    back to the OS with `madvise(MADV_DONTNEED)` while the mapping itself
//!    stays valid (type-stable memory — stale readers may still load from
//!    freed slots and must fault in zeros, never SIGSEGV).
//! 3. **No interaction with the global allocator**, so the steady-state
//!    allocation-free reclamation passes stay allocation-free.
//!
//! Off Linux the module still compiles: [`aligned_map`] falls back to an
//! aligned `std::alloc` allocation and [`release_pages`] reports `false`
//! (nothing returned to the OS), which callers surface as a zero
//! `slab_released_bytes` gauge rather than an error.

/// Maps `len` bytes of zeroed anonymous memory aligned to `align`.
///
/// `len` and `align` must be non-zero multiples of the page size and `align`
/// a power of two. Returns `None` if the kernel refuses the mapping.
#[cfg(target_os = "linux")]
pub fn aligned_map(len: usize, align: usize) -> Option<*mut u8> {
    assert!(align.is_power_of_two(), "align must be a power of two");
    assert!(
        len > 0 && len.is_multiple_of(align),
        "len must be a multiple of align"
    );
    // Over-map by the alignment, then trim the head and tail so the surviving
    // window starts on an `align` boundary. mmap only guarantees page
    // alignment, so this is the portable way to get 64 KiB-aligned slabs.
    let span = len.checked_add(align)?;
    let raw = unsafe {
        libc::mmap(
            core::ptr::null_mut(),
            span,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
            -1,
            0,
        )
    };
    if raw == libc::MAP_FAILED {
        return None;
    }
    let base = raw as usize;
    let aligned = (base + align - 1) & !(align - 1);
    let head = aligned - base;
    let tail = span - head - len;
    unsafe {
        if head > 0 {
            libc::munmap(raw, head);
        }
        if tail > 0 {
            libc::munmap((aligned + len) as *mut libc::c_void, tail);
        }
    }
    Some(aligned as *mut u8)
}

/// Fallback for non-Linux hosts: an aligned heap allocation. The memory is
/// zeroed to match the mmap contract; nothing is ever returned to the OS.
#[cfg(not(target_os = "linux"))]
pub fn aligned_map(len: usize, align: usize) -> Option<*mut u8> {
    assert!(align.is_power_of_two(), "align must be a power of two");
    assert!(
        len > 0 && len.is_multiple_of(align),
        "len must be a multiple of align"
    );
    let layout = std::alloc::Layout::from_size_align(len, align).ok()?;
    let p = unsafe { std::alloc::alloc_zeroed(layout) };
    if p.is_null() {
        None
    } else {
        Some(p)
    }
}

/// Unmaps a region previously returned by [`aligned_map`].
///
/// # Safety
///
/// `ptr`/`len` must denote exactly one live [`aligned_map`] region, and no
/// reference into it may survive the call. The slab allocator itself never
/// unmaps (slabs are type-stable for the process lifetime); this exists for
/// tests and future shutdown paths.
#[cfg(target_os = "linux")]
pub unsafe fn unmap(ptr: *mut u8, len: usize) {
    unsafe {
        libc::munmap(ptr as *mut libc::c_void, len);
    }
}

/// Fallback for non-Linux hosts: releases the heap allocation.
///
/// # Safety
///
/// Same contract as the Linux version: exactly one live [`aligned_map`]
/// region, with the same `len` (the alignment is recomputed as `len`'s
/// largest power-of-two divisor — callers here always map `len == align`).
#[cfg(not(target_os = "linux"))]
pub unsafe fn unmap(ptr: *mut u8, len: usize) {
    let align = 1usize << len.trailing_zeros();
    let layout = std::alloc::Layout::from_size_align(len, align).unwrap();
    unsafe { std::alloc::dealloc(ptr, layout) }
}

/// Returns `len` bytes starting at `ptr` to the OS while keeping the mapping
/// valid: subsequent reads fault in zero pages, writes re-commit.
///
/// Returns `true` when the pages were actually released. `false` means the
/// kernel refused (or the host is not Linux) — callers must treat that as
/// "nothing released" and skip the released-bytes accounting, not as an
/// error: the memory is still perfectly usable.
pub fn release_pages(ptr: *mut u8, len: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        let rc = unsafe { libc::madvise(ptr as *mut libc::c_void, len, libc::MADV_DONTNEED) };
        rc == 0
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (ptr, len);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLAB: usize = 1 << 16;

    #[test]
    fn map_is_aligned_and_zeroed() {
        let p = aligned_map(SLAB, SLAB).expect("map");
        assert_eq!(p as usize & (SLAB - 1), 0, "not 64 KiB aligned");
        unsafe {
            assert_eq!(p.read(), 0);
            assert_eq!(p.add(SLAB - 1).read(), 0);
            unmap(p, SLAB);
        }
    }

    #[test]
    fn many_maps_all_distinct_and_aligned() {
        let mut ptrs = Vec::new();
        for _ in 0..32 {
            let p = aligned_map(SLAB, SLAB).expect("map");
            assert_eq!(p as usize & (SLAB - 1), 0);
            assert!(!ptrs.contains(&(p as usize)));
            ptrs.push(p as usize);
        }
        for p in ptrs {
            unsafe { unmap(p as *mut u8, SLAB) };
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn release_pages_zeroes_but_keeps_mapping() {
        let p = aligned_map(SLAB, SLAB).expect("map");
        unsafe {
            p.write(0x5A);
            p.add(SLAB - 1).write(0xA5);
        }
        assert!(release_pages(p, SLAB), "madvise refused on plain Linux");
        unsafe {
            // The mapping survives; the contents do not.
            assert_eq!(p.read(), 0);
            assert_eq!(p.add(SLAB - 1).read(), 0);
            // And it is still writable (pages re-commit on demand).
            p.write(7);
            assert_eq!(p.read(), 7);
            unmap(p, SLAB);
        }
    }

    #[test]
    fn multi_slab_map_supports_partial_release() {
        let p = aligned_map(4 * SLAB, SLAB).expect("map");
        unsafe {
            for i in 0..4 {
                p.add(i * SLAB).write(i as u8 + 1);
            }
            if release_pages(p.add(SLAB), SLAB) {
                assert_eq!(p.read(), 1, "neighbour slab must be untouched");
                assert_eq!(p.add(SLAB).read(), 0, "released slab reads zero");
                assert_eq!(p.add(2 * SLAB).read(), 3);
            }
            unmap(p, 4 * SLAB);
        }
    }
}
