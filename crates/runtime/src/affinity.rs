//! Best-effort CPU affinity helpers for benchmark threads.
//!
//! The paper's testbed pins worker threads across NUMA nodes with
//! `numactl --interleave=all`. On this reproduction's host we simply pin
//! thread *t* to CPU *t mod ncpus* so thread-count sweeps behave
//! monotonically; failures (e.g. sandboxes rejecting `sched_setaffinity`)
//! are ignored — affinity is a performance hint, never a correctness
//! requirement.

/// Number of online CPUs, with a floor of 1.
pub fn num_cpus() -> usize {
    // SAFETY: sysconf is thread-safe and has no memory-safety preconditions.
    let n = unsafe { libc::sysconf(libc::_SC_NPROCESSORS_ONLN) };
    if n < 1 {
        1
    } else {
        n as usize
    }
}

/// Pins the calling thread to `cpu % num_cpus()`. Returns whether the
/// kernel accepted the mask.
#[cfg(target_os = "linux")]
pub fn pin_current_to(cpu: usize) -> bool {
    let cpu = cpu % num_cpus();
    // SAFETY: CPU_ZERO/CPU_SET initialize the set fully before use; the set
    // outlives the syscall.
    unsafe {
        let mut set: libc::cpu_set_t = core::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(cpu, &mut set);
        libc::sched_setaffinity(0, core::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
}

/// Non-Linux stub: affinity is a hint only.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_to(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_cpus_is_positive() {
        assert!(num_cpus() >= 1);
    }

    #[test]
    fn pinning_does_not_crash() {
        // May be rejected by the sandbox; only the call path is under test.
        let _ = pin_current_to(0);
        let _ = pin_current_to(num_cpus() + 3);
    }
}
