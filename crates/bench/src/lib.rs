//! # `pop-bench` — figure harness and microbenchmarks
//!
//! Static dispatch over the full `(scheme × structure)` matrix the paper
//! evaluates, plus the figure specifications (workload, size, metrics) for
//! every table and figure in the paper. The `figures` binary drives these;
//! criterion benches under `benches/` cover the per-read-cost and
//! signal-latency microclaims.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod figure_data;
pub mod figures;
pub mod matrix;

use std::sync::Arc;

use pop_core::{
    Ebr, EpochPop, HazardEra, HazardEraPop, HazardPtr, HazardPtrAsym, HazardPtrPop, Hyaline, Ibr,
    NbrPlus, NoReclaim, Smr, SmrConfig, Vbr,
};
use pop_ds::ab_tree::AbTree;
use pop_ds::ext_bst::ExtBst;
use pop_ds::hash_map::HashMapHm;
use pop_ds::hml::HmList;
use pop_ds::lazy_list::LazyList;
use pop_ds::nm_tree::NmTree;
use pop_ds::skip_list::SkipList;
use pop_workload::{run_latency_probe, run_workload, LatencyReport, RunConfig, RunRecord};

/// The paper's hash-table load factor (§5.0.1).
pub const HASH_LOAD_FACTOR: u64 = 6;

/// Scheme selector for runtime dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SchemeId {
    Nr,
    Ebr,
    Ibr,
    Hp,
    HpAsym,
    He,
    NbrPlus,
    HazardPtrPop,
    HazardEraPop,
    EpochPop,
    Hyaline,
    Vbr,
}

impl SchemeId {
    /// Every scheme in the paper's main figures (Hyaline joins only the
    /// appendix Crystalline comparison).
    pub const MAIN: [SchemeId; 10] = [
        SchemeId::Nr,
        SchemeId::Ebr,
        SchemeId::Ibr,
        SchemeId::Hp,
        SchemeId::HpAsym,
        SchemeId::He,
        SchemeId::NbrPlus,
        SchemeId::HazardPtrPop,
        SchemeId::HazardEraPop,
        SchemeId::EpochPop,
    ];

    /// All schemes including the Crystalline-family stand-in and the
    /// slab-arena VBR (neither joins the paper's main figures).
    pub const ALL: [SchemeId; 12] = [
        SchemeId::Nr,
        SchemeId::Ebr,
        SchemeId::Ibr,
        SchemeId::Hp,
        SchemeId::HpAsym,
        SchemeId::He,
        SchemeId::NbrPlus,
        SchemeId::HazardPtrPop,
        SchemeId::HazardEraPop,
        SchemeId::EpochPop,
        SchemeId::Hyaline,
        SchemeId::Vbr,
    ];

    /// Plot label.
    pub fn name(self) -> &'static str {
        match self {
            SchemeId::Nr => NoReclaim::NAME,
            SchemeId::Ebr => Ebr::NAME,
            SchemeId::Ibr => Ibr::NAME,
            SchemeId::Hp => HazardPtr::NAME,
            SchemeId::HpAsym => HazardPtrAsym::NAME,
            SchemeId::He => HazardEra::NAME,
            SchemeId::NbrPlus => NbrPlus::NAME,
            SchemeId::HazardPtrPop => HazardPtrPop::NAME,
            SchemeId::HazardEraPop => HazardEraPop::NAME,
            SchemeId::EpochPop => EpochPop::NAME,
            SchemeId::Hyaline => Hyaline::NAME,
            SchemeId::Vbr => Vbr::NAME,
        }
    }

    /// Parses a scheme label (case-insensitive).
    pub fn parse(s: &str) -> Option<SchemeId> {
        Self::ALL
            .into_iter()
            .find(|id| id.name().eq_ignore_ascii_case(s))
    }
}

/// Data-structure selector for runtime dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum DsId {
    Hml,
    Ll,
    Hmht,
    Dgt,
    Abt,
    Skl,
    Nmt,
}

impl DsId {
    /// Every structure in the evaluation matrix.
    pub const ALL: [DsId; 7] = [
        DsId::Hml,
        DsId::Ll,
        DsId::Hmht,
        DsId::Dgt,
        DsId::Abt,
        DsId::Skl,
        DsId::Nmt,
    ];

    /// Plot label.
    pub fn name(self) -> &'static str {
        match self {
            DsId::Hml => "HML",
            DsId::Ll => "LL",
            DsId::Hmht => "HMHT",
            DsId::Dgt => "DGT",
            DsId::Abt => "ABT",
            DsId::Skl => "SKL",
            DsId::Nmt => "NMT",
        }
    }

    /// Parses a structure label (case-insensitive).
    pub fn parse(s: &str) -> Option<DsId> {
        Self::ALL
            .into_iter()
            .find(|id| id.name().eq_ignore_ascii_case(s))
    }
}

fn run_ds<S: Smr>(ds: DsId, cfg: &RunConfig, smr_cfg: SmrConfig) -> RunRecord {
    match ds {
        DsId::Hml => run_workload::<S, HmList<S>, _>(cfg, smr_cfg, HmList::new),
        DsId::Ll => run_workload::<S, LazyList<S>, _>(cfg, smr_cfg, LazyList::new),
        DsId::Hmht => {
            let range = cfg.key_range;
            run_workload::<S, HashMapHm<S>, _>(cfg, smr_cfg, move |smr: Arc<S>| {
                HashMapHm::for_key_range(smr, range, HASH_LOAD_FACTOR)
            })
        }
        DsId::Dgt => run_workload::<S, ExtBst<S>, _>(cfg, smr_cfg, ExtBst::new),
        DsId::Abt => run_workload::<S, AbTree<S>, _>(cfg, smr_cfg, AbTree::new),
        DsId::Skl => run_workload::<S, SkipList<S>, _>(cfg, smr_cfg, SkipList::new),
        DsId::Nmt => run_workload::<S, NmTree<S>, _>(cfg, smr_cfg, NmTree::new),
    }
}

/// Runs one `(scheme, structure)` benchmark trial.
pub fn run_one(scheme: SchemeId, ds: DsId, cfg: &RunConfig, smr_cfg: SmrConfig) -> RunRecord {
    match scheme {
        SchemeId::Nr => run_ds::<NoReclaim>(ds, cfg, smr_cfg),
        SchemeId::Ebr => run_ds::<Ebr>(ds, cfg, smr_cfg),
        SchemeId::Ibr => run_ds::<Ibr>(ds, cfg, smr_cfg),
        SchemeId::Hp => run_ds::<HazardPtr>(ds, cfg, smr_cfg),
        SchemeId::HpAsym => run_ds::<HazardPtrAsym>(ds, cfg, smr_cfg),
        SchemeId::He => run_ds::<HazardEra>(ds, cfg, smr_cfg),
        SchemeId::NbrPlus => run_ds::<NbrPlus>(ds, cfg, smr_cfg),
        SchemeId::HazardPtrPop => run_ds::<HazardPtrPop>(ds, cfg, smr_cfg),
        SchemeId::HazardEraPop => run_ds::<HazardEraPop>(ds, cfg, smr_cfg),
        SchemeId::EpochPop => run_ds::<EpochPop>(ds, cfg, smr_cfg),
        SchemeId::Hyaline => run_ds::<Hyaline>(ds, cfg, smr_cfg),
        SchemeId::Vbr => run_ds::<Vbr>(ds, cfg, smr_cfg),
    }
}

fn latency_ds<S: Smr>(ds: DsId, cfg: &RunConfig, smr_cfg: SmrConfig) -> LatencyReport {
    match ds {
        DsId::Hml => run_latency_probe::<S, HmList<S>, _>(cfg, smr_cfg, HmList::new),
        DsId::Ll => run_latency_probe::<S, LazyList<S>, _>(cfg, smr_cfg, LazyList::new),
        DsId::Hmht => {
            let range = cfg.key_range;
            run_latency_probe::<S, HashMapHm<S>, _>(cfg, smr_cfg, move |smr: Arc<S>| {
                HashMapHm::for_key_range(smr, range, HASH_LOAD_FACTOR)
            })
        }
        DsId::Dgt => run_latency_probe::<S, ExtBst<S>, _>(cfg, smr_cfg, ExtBst::new),
        DsId::Abt => run_latency_probe::<S, AbTree<S>, _>(cfg, smr_cfg, AbTree::new),
        DsId::Skl => run_latency_probe::<S, SkipList<S>, _>(cfg, smr_cfg, SkipList::new),
        DsId::Nmt => run_latency_probe::<S, NmTree<S>, _>(cfg, smr_cfg, NmTree::new),
    }
}

/// Runs one `(scheme, structure)` tail-latency probe (extension
/// experiment: do reclamation pings surface in reader tail latency?).
pub fn run_latency_one(
    scheme: SchemeId,
    ds: DsId,
    cfg: &RunConfig,
    smr_cfg: SmrConfig,
) -> LatencyReport {
    match scheme {
        SchemeId::Nr => latency_ds::<NoReclaim>(ds, cfg, smr_cfg),
        SchemeId::Ebr => latency_ds::<Ebr>(ds, cfg, smr_cfg),
        SchemeId::Ibr => latency_ds::<Ibr>(ds, cfg, smr_cfg),
        SchemeId::Hp => latency_ds::<HazardPtr>(ds, cfg, smr_cfg),
        SchemeId::HpAsym => latency_ds::<HazardPtrAsym>(ds, cfg, smr_cfg),
        SchemeId::He => latency_ds::<HazardEra>(ds, cfg, smr_cfg),
        SchemeId::NbrPlus => latency_ds::<NbrPlus>(ds, cfg, smr_cfg),
        SchemeId::HazardPtrPop => latency_ds::<HazardPtrPop>(ds, cfg, smr_cfg),
        SchemeId::HazardEraPop => latency_ds::<HazardEraPop>(ds, cfg, smr_cfg),
        SchemeId::EpochPop => latency_ds::<EpochPop>(ds, cfg, smr_cfg),
        SchemeId::Hyaline => latency_ds::<Hyaline>(ds, cfg, smr_cfg),
        SchemeId::Vbr => latency_ds::<Vbr>(ds, cfg, smr_cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_workload::{OpMix, WorkloadKind};
    use std::time::Duration;

    #[test]
    fn scheme_parse_roundtrip() {
        for id in SchemeId::ALL {
            assert_eq!(SchemeId::parse(id.name()), Some(id));
        }
        assert_eq!(
            SchemeId::parse("hazardptrpop"),
            Some(SchemeId::HazardPtrPop)
        );
        assert_eq!(SchemeId::parse("bogus"), None);
    }

    #[test]
    fn dispatch_covers_matrix_smoke() {
        // One fast trial for a few representative cells of the matrix.
        let cfg = RunConfig {
            threads: 2,
            duration: Duration::from_millis(50),
            key_range: 64,
            kind: WorkloadKind::Uniform(OpMix::UPDATE_HEAVY),
            prefill: true,
            pin_threads: false,
            seed: 1,
            skew: 0.0,
        };
        for (s, d) in [
            (SchemeId::HazardPtrPop, DsId::Hml),
            (SchemeId::EpochPop, DsId::Dgt),
            (SchemeId::NbrPlus, DsId::Ll),
            (SchemeId::Hyaline, DsId::Abt),
            (SchemeId::Vbr, DsId::Skl),
        ] {
            let rec = run_one(
                s,
                d,
                &cfg,
                pop_core::SmrConfig::for_tests(2).with_reclaim_freq(64),
            );
            assert!(rec.ops > 0, "{}/{} executed no ops", s.name(), d.name());
        }
    }
}
