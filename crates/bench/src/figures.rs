//! Figure specifications: one entry per table/figure in the paper, with
//! host-scaled defaults and `--paper` full-scale parameters.
//!
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

use std::time::Duration;

use pop_core::SmrConfig;
use pop_workload::{OpMix, RunConfig, RunRecord, WorkloadKind};

use crate::{run_one, DsId, SchemeId};

/// Which workload(s) a figure sweeps.
#[derive(Clone, Copy, Debug)]
pub enum FigureWorkload {
    /// 50% inserts / 50% deletes.
    UpdateHeavy,
    /// 90% contains / 5% inserts / 5% deletes.
    ReadHeavy,
    /// Both of the above (appendix figures).
    Both,
    /// Figure 4: reader/updater role split, sweeping structure size.
    LongRunningReads,
}

/// A reproducible figure from the paper.
#[derive(Clone, Copy, Debug)]
pub struct FigureSpec {
    /// Identifier (`fig1a` … `fig11`).
    pub id: &'static str,
    /// Human description matching the paper caption.
    pub caption: &'static str,
    /// Structure under test.
    pub ds: DsId,
    /// Key range in the paper.
    pub key_range_paper: u64,
    /// Key range scaled to this host.
    pub key_range_scaled: u64,
    /// Workload shape.
    pub workload: FigureWorkload,
    /// Whether the Crystalline-family stand-in joins the sweep.
    pub include_hyaline: bool,
    /// Retire-list threshold (paper default 24 576; Figure 4 uses 2 048).
    pub reclaim_freq: usize,
}

/// Every figure in the paper, in order.
pub const FIGURES: &[FigureSpec] = &[
    FigureSpec {
        id: "fig1a",
        caption: "Update-heavy DGT: throughput + max retire list",
        ds: DsId::Dgt,
        key_range_paper: 200_000,
        key_range_scaled: 20_000,
        workload: FigureWorkload::UpdateHeavy,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig1b",
        caption: "Update-heavy HMHT (lf 6): throughput + max retire list",
        ds: DsId::Hmht,
        key_range_paper: 6_000_000,
        key_range_scaled: 60_000,
        workload: FigureWorkload::UpdateHeavy,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig1c",
        caption: "Update-heavy ABT: throughput + max retire list",
        ds: DsId::Abt,
        key_range_paper: 20_000_000,
        key_range_scaled: 200_000,
        workload: FigureWorkload::UpdateHeavy,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig2a",
        caption: "Update-heavy HML (2K): throughput + max retire list",
        ds: DsId::Hml,
        key_range_paper: 2_000,
        key_range_scaled: 2_000,
        workload: FigureWorkload::UpdateHeavy,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig2b",
        caption: "Update-heavy LL (2K): throughput + max retire list",
        ds: DsId::Ll,
        key_range_paper: 2_000,
        key_range_scaled: 2_000,
        workload: FigureWorkload::UpdateHeavy,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig3a",
        caption: "Read-heavy ABT: throughput",
        ds: DsId::Abt,
        key_range_paper: 20_000_000,
        key_range_scaled: 200_000,
        workload: FigureWorkload::ReadHeavy,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig3b",
        caption: "Read-heavy DGT: throughput",
        ds: DsId::Dgt,
        key_range_paper: 200_000,
        key_range_scaled: 20_000,
        workload: FigureWorkload::ReadHeavy,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig4",
        caption: "Long-running reads, HML size sweep: read ratio to NR + memory",
        ds: DsId::Hml,
        key_range_paper: 800_000,
        key_range_scaled: 50_000,
        workload: FigureWorkload::LongRunningReads,
        include_hyaline: false,
        reclaim_freq: 2_048, // the paper sets 2K to force frequent reclamation
    },
    FigureSpec {
        id: "fig5",
        caption: "Appendix ABT: both mixes, throughput + memory + unreclaimed",
        ds: DsId::Abt,
        key_range_paper: 20_000_000,
        key_range_scaled: 200_000,
        workload: FigureWorkload::Both,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig6",
        caption: "Appendix DGT (2M): both mixes, throughput + memory + unreclaimed",
        ds: DsId::Dgt,
        key_range_paper: 2_000_000,
        key_range_scaled: 100_000,
        workload: FigureWorkload::Both,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig7",
        caption: "Appendix HMHT (6M): both mixes, throughput + memory + unreclaimed",
        ds: DsId::Hmht,
        key_range_paper: 6_000_000,
        key_range_scaled: 60_000,
        workload: FigureWorkload::Both,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig8",
        caption: "Appendix HML (2K): both mixes, throughput + memory + unreclaimed",
        ds: DsId::Hml,
        key_range_paper: 2_000,
        key_range_scaled: 2_000,
        workload: FigureWorkload::Both,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig9",
        caption: "Appendix LL (2K): both mixes, throughput + memory + unreclaimed",
        ds: DsId::Ll,
        key_range_paper: 2_000,
        key_range_scaled: 2_000,
        workload: FigureWorkload::Both,
        include_hyaline: false,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig10",
        caption: "Appendix HML (2K) incl. Crystalline-family: both mixes",
        ds: DsId::Hml,
        key_range_paper: 2_000,
        key_range_scaled: 2_000,
        workload: FigureWorkload::Both,
        include_hyaline: true,
        reclaim_freq: 24_576,
    },
    FigureSpec {
        id: "fig11",
        caption: "Appendix HMHT (6M) incl. Crystalline-family: both mixes",
        ds: DsId::Hmht,
        key_range_paper: 6_000_000,
        key_range_scaled: 60_000,
        workload: FigureWorkload::Both,
        include_hyaline: true,
        reclaim_freq: 24_576,
    },
];

/// Looks up a figure by id.
pub fn find(id: &str) -> Option<&'static FigureSpec> {
    FIGURES.iter().find(|f| f.id.eq_ignore_ascii_case(id))
}

/// Sweep options common to all figures.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Duration per trial.
    pub duration: Duration,
    /// Use the paper's full-scale key ranges.
    pub paper_scale: bool,
    /// Scheme filter (None = the figure's default set).
    pub schemes: Option<Vec<SchemeId>>,
    /// Override key range.
    pub key_range: Option<u64>,
    /// Override retire-list threshold.
    pub reclaim_freq: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        let ncpu = pop_runtime::affinity::num_cpus();
        SweepOptions {
            // Sweep to 2× CPUs: the last point exercises oversubscription,
            // as the paper does beyond 144 threads.
            threads: vec![1, ncpu, ncpu * 2],
            duration: Duration::from_millis(1000),
            paper_scale: false,
            schemes: None,
            key_range: None,
            reclaim_freq: None,
        }
    }
}

/// Runs a figure's full sweep, returning `(series-label, record)` rows.
pub fn run_figure(spec: &FigureSpec, opts: &SweepOptions) -> Vec<(String, RunRecord)> {
    let schemes: Vec<SchemeId> = opts.schemes.clone().unwrap_or_else(|| {
        if spec.include_hyaline {
            SchemeId::ALL.to_vec()
        } else {
            SchemeId::MAIN.to_vec()
        }
    });
    let key_range = opts.key_range.unwrap_or(if opts.paper_scale {
        spec.key_range_paper
    } else {
        spec.key_range_scaled
    });
    let reclaim_freq = opts.reclaim_freq.unwrap_or(spec.reclaim_freq);

    let workloads: Vec<(&str, WorkloadKind)> = match spec.workload {
        FigureWorkload::UpdateHeavy => {
            vec![("update", WorkloadKind::Uniform(OpMix::UPDATE_HEAVY))]
        }
        FigureWorkload::ReadHeavy => vec![("read", WorkloadKind::Uniform(OpMix::READ_HEAVY))],
        FigureWorkload::Both => vec![
            ("update", WorkloadKind::Uniform(OpMix::UPDATE_HEAVY)),
            ("read", WorkloadKind::Uniform(OpMix::READ_HEAVY)),
        ],
        FigureWorkload::LongRunningReads => vec![(
            "lrr",
            WorkloadKind::LongRunningReads {
                update_range: (key_range / 100).max(16),
            },
        )],
    };

    let mut out = Vec::new();
    for (wl_name, kind) in &workloads {
        for &threads in &opts.threads {
            for &scheme in &schemes {
                let cfg = RunConfig {
                    threads,
                    duration: opts.duration,
                    key_range,
                    kind: *kind,
                    prefill: true,
                    pin_threads: true,
                    seed: 0x505_u64 ^ threads as u64,
                    skew: 0.0,
                };
                let smr_cfg = SmrConfig::for_threads(threads).with_reclaim_freq(reclaim_freq);
                let rec = run_one(scheme, spec.ds, &cfg, smr_cfg);
                out.push((format!("{}/{}", spec.id, wl_name), rec));
            }
        }
    }
    out
}

/// Figure 4's size sweep (x-axis is structure size, not threads).
pub fn run_fig4_sweep(opts: &SweepOptions) -> Vec<(String, RunRecord)> {
    let spec = find("fig4").expect("fig4 spec");
    let sizes: Vec<u64> = if opts.paper_scale {
        vec![10_000, 50_000, 100_000, 400_000, 800_000]
    } else {
        vec![1_000, 5_000, 10_000, 50_000]
    };
    let threads = *opts.threads.iter().max().unwrap_or(&2);
    let schemes = opts
        .schemes
        .clone()
        .unwrap_or_else(|| SchemeId::MAIN.to_vec());
    let mut out = Vec::new();
    for &size in &sizes {
        for &scheme in &schemes {
            let cfg = RunConfig {
                threads,
                duration: opts.duration,
                key_range: size,
                kind: WorkloadKind::LongRunningReads {
                    update_range: (size / 100).max(16),
                },
                prefill: true,
                pin_threads: true,
                seed: 0xF164,
                skew: 0.0,
            };
            let smr_cfg = SmrConfig::for_threads(threads)
                .with_reclaim_freq(opts.reclaim_freq.unwrap_or(spec.reclaim_freq));
            let rec = run_one(scheme, spec.ds, &cfg, smr_cfg);
            out.push((format!("fig4/size{}", size), rec));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_figure_is_specified() {
        let ids: Vec<&str> = FIGURES.iter().map(|f| f.id).collect();
        for expect in [
            "fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "fig3a", "fig3b", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11",
        ] {
            assert!(ids.contains(&expect), "missing figure spec {expect}");
        }
    }

    #[test]
    fn specs_are_internally_consistent() {
        for f in FIGURES {
            assert!(f.key_range_scaled <= f.key_range_paper);
            assert!(f.key_range_scaled >= 1_000, "{} too small to measure", f.id);
            assert!(f.reclaim_freq >= 1);
        }
        // The paper's Crystalline comparison covers exactly HML and HMHT.
        let hyaline: Vec<&FigureSpec> = FIGURES.iter().filter(|f| f.include_hyaline).collect();
        assert_eq!(hyaline.len(), 2);
        assert!(hyaline.iter().any(|f| matches!(f.ds, DsId::Hml)));
        assert!(hyaline.iter().any(|f| matches!(f.ds, DsId::Hmht)));
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("FIG2A").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn fig4_uses_small_retire_threshold() {
        // The paper sets 2K for the long-running-reads experiment so
        // reclamation (and NBR restarts) fire constantly.
        assert_eq!(find("fig4").unwrap().reclaim_freq, 2_048);
    }
}
