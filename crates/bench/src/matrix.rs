//! The full evaluation matrix: `scheme × structure × threads × mix ×
//! skew` cells, presets sized for CI (`smoke`), the paper's scaled-down
//! grid (`paper`) and an overnight sweep (`full`), plus CSV validation
//! for the `matrix` driver binary.
//!
//! Every cell runs through [`crate::run_one`] and lands in the same
//! [`RunRecord`] CSV schema the figure harness uses; the `figure` column
//! carries [`MatrixCell::figure_tag`], which reuses the paper's figure
//! numbers (`fig1a` … `fig4`) where the cell reproduces one and
//! `ext-<ds>-<mix>` tags for the matrix extensions (skip list, NM tree,
//! extra mixes). [`crate::figure_data`] pivots the CSV into
//! gnuplot-ready `.dat` files keyed by those tags.

use std::time::Duration;

use pop_core::SmrConfig;
use pop_workload::{OpMix, RunConfig, RunRecord, WorkloadKind};

use crate::{run_one, DsId, SchemeId};

/// Workload shape axis of the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixMix {
    /// 50% inserts / 50% deletes.
    UpdateHeavy,
    /// 90% contains / 5% inserts / 5% deletes.
    ReadHeavy,
    /// Reader/updater role split (the paper's Figure 4 shape).
    LongRunningReads,
}

impl MatrixMix {
    /// Short label used in figure tags and `--filter` matching.
    pub fn label(self) -> &'static str {
        match self {
            MatrixMix::UpdateHeavy => "upd",
            MatrixMix::ReadHeavy => "rd",
            MatrixMix::LongRunningReads => "lrr",
        }
    }
}

/// One trial of the evaluation grid.
#[derive(Clone, Copy, Debug)]
pub struct MatrixCell {
    /// Reclamation scheme.
    pub scheme: SchemeId,
    /// Data structure.
    pub ds: DsId,
    /// Worker threads.
    pub threads: usize,
    /// Workload shape.
    pub mix: MatrixMix,
    /// Zipf skew exponent (0 = uniform; never combined with
    /// [`MatrixMix::LongRunningReads`]).
    pub skew: f64,
    /// Key range for this structure at this preset.
    pub key_range: u64,
    /// Measured-phase length.
    pub duration_ms: u64,
    /// Retire-list threshold.
    pub reclaim_freq: usize,
}

impl MatrixCell {
    /// The `figure` CSV tag: the paper's figure number when this cell
    /// reproduces one, an `ext-` tag otherwise, with a `-zS` suffix for
    /// skewed variants.
    pub fn figure_tag(&self) -> String {
        let base = match (self.ds, self.mix) {
            (DsId::Dgt, MatrixMix::UpdateHeavy) => "fig1a".to_string(),
            (DsId::Hmht, MatrixMix::UpdateHeavy) => "fig1b".to_string(),
            (DsId::Abt, MatrixMix::UpdateHeavy) => "fig1c".to_string(),
            (DsId::Hml, MatrixMix::UpdateHeavy) => "fig2a".to_string(),
            (DsId::Ll, MatrixMix::UpdateHeavy) => "fig2b".to_string(),
            (DsId::Abt, MatrixMix::ReadHeavy) => "fig3a".to_string(),
            (DsId::Dgt, MatrixMix::ReadHeavy) => "fig3b".to_string(),
            (DsId::Hml, MatrixMix::LongRunningReads) => "fig4".to_string(),
            (ds, mix) => format!("ext-{}-{}", ds.name().to_ascii_lowercase(), mix.label()),
        };
        if self.skew > 0.0 {
            format!("{base}-z{}", self.skew)
        } else {
            base
        }
    }

    /// Human-readable cell id, also the `--filter` match target:
    /// `scheme/ds/t<threads>/<mix>[/z<skew>]`.
    pub fn id(&self) -> String {
        let mut s = format!(
            "{}/{}/t{}/{}",
            self.scheme.name(),
            self.ds.name(),
            self.threads,
            self.mix.label()
        );
        if self.skew > 0.0 {
            s.push_str(&format!("/z{}", self.skew));
        }
        s
    }

    /// Case-insensitive substring match against [`MatrixCell::id`].
    pub fn matches(&self, filter: &str) -> bool {
        filter.is_empty()
            || self
                .id()
                .to_ascii_lowercase()
                .contains(&filter.to_ascii_lowercase())
    }

    /// Runs the trial.
    pub fn run(&self) -> RunRecord {
        let kind = match self.mix {
            MatrixMix::UpdateHeavy => WorkloadKind::Uniform(OpMix::UPDATE_HEAVY),
            MatrixMix::ReadHeavy => WorkloadKind::Uniform(OpMix::READ_HEAVY),
            MatrixMix::LongRunningReads => WorkloadKind::LongRunningReads {
                update_range: (self.key_range / 16).max(16),
            },
        };
        let cfg = RunConfig {
            threads: self.threads,
            duration: Duration::from_millis(self.duration_ms),
            key_range: self.key_range,
            kind,
            prefill: true,
            pin_threads: false,
            seed: 0x5EED_CAFE,
            skew: self.skew,
        };
        let smr_cfg = SmrConfig::for_threads(self.threads).with_reclaim_freq(self.reclaim_freq);
        run_one(self.scheme, self.ds, &cfg, smr_cfg)
    }
}

/// Grid size / trial length presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// CI-sized: every scheme × {HML, HMHT, SKL, NMT} × {2, 4} threads ×
    /// {update, read} mixes, plus an HML long-running-reads column;
    /// ~60 ms trials.
    Smoke,
    /// The paper's grid at host-scaled key ranges: every scheme × every
    /// structure × {1, 2, 4, 8} threads, both mixes, the Figure 4 shape
    /// and a z=0.99 skew ablation on the list/hash cells; 300 ms trials.
    Paper,
    /// The paper grid at full key ranges, {1..16} threads, 1 s trials.
    Full,
}

impl Preset {
    /// Parses a preset name.
    pub fn parse(s: &str) -> Option<Preset> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Preset::Smoke),
            "paper" => Some(Preset::Paper),
            "full" => Some(Preset::Full),
            _ => None,
        }
    }

    fn key_range(self, ds: DsId) -> u64 {
        match self {
            Preset::Smoke => match ds {
                DsId::Hml | DsId::Ll => 256,
                _ => 2_048,
            },
            // Matches the `key_range_scaled` column of the figure specs.
            Preset::Paper => match ds {
                DsId::Hml | DsId::Ll => 2_000,
                DsId::Hmht => 60_000,
                DsId::Abt => 200_000,
                DsId::Dgt | DsId::Skl | DsId::Nmt => 20_000,
            },
            Preset::Full => match ds {
                DsId::Hml | DsId::Ll => 2_000,
                DsId::Hmht => 600_000,
                DsId::Abt => 2_000_000,
                DsId::Dgt | DsId::Skl | DsId::Nmt => 200_000,
            },
        }
    }

    fn duration_ms(self) -> u64 {
        match self {
            Preset::Smoke => 60,
            Preset::Paper => 300,
            Preset::Full => 1_000,
        }
    }

    fn reclaim_freq(self) -> usize {
        match self {
            Preset::Smoke => 512,
            // The paper's retire-list threshold (§5.0.1).
            Preset::Paper | Preset::Full => 24_576,
        }
    }

    fn thread_counts(self) -> &'static [usize] {
        match self {
            Preset::Smoke => &[2, 4],
            Preset::Paper => &[1, 2, 4, 8],
            Preset::Full => &[1, 2, 4, 8, 16],
        }
    }

    fn structures(self) -> &'static [DsId] {
        match self {
            Preset::Smoke => &[DsId::Hml, DsId::Hmht, DsId::Skl, DsId::Nmt],
            Preset::Paper | Preset::Full => &DsId::ALL,
        }
    }

    /// Expands the preset into its cell list (row-major: scheme outermost,
    /// so CSV output groups by scheme).
    pub fn cells(self) -> Vec<MatrixCell> {
        let mut out = Vec::new();
        let duration_ms = self.duration_ms();
        let reclaim_freq = self.reclaim_freq();
        let mut push = |scheme, ds, threads, mix, skew| {
            out.push(MatrixCell {
                scheme,
                ds,
                threads,
                mix,
                skew,
                key_range: self.key_range(ds),
                duration_ms,
                reclaim_freq,
            });
        };
        for scheme in SchemeId::ALL {
            for &ds in self.structures() {
                for &threads in self.thread_counts() {
                    push(scheme, ds, threads, MatrixMix::UpdateHeavy, 0.0);
                    push(scheme, ds, threads, MatrixMix::ReadHeavy, 0.0);
                }
            }
            // The Figure 4 shape (long-running readers) on the list — the
            // structure whose scans are long enough to stall reclamation.
            for &threads in self.thread_counts() {
                if threads >= 2 {
                    push(scheme, DsId::Hml, threads, MatrixMix::LongRunningReads, 0.0);
                }
            }
            // Skew ablation on the contention-sensitive cells.
            if self != Preset::Smoke {
                for &threads in self.thread_counts() {
                    push(scheme, DsId::Hml, threads, MatrixMix::UpdateHeavy, 0.99);
                    push(scheme, DsId::Hmht, threads, MatrixMix::UpdateHeavy, 0.99);
                }
            }
        }
        out
    }
}

/// Validates matrix CSV output: exact header, uniform field counts, and
/// parseable numeric columns. Returns the data-row count.
pub fn validate_csv(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV")?;
    if header != RunRecord::CSV_HEADER {
        return Err(format!(
            "header mismatch:\n  got      {header}\n  expected {}",
            RunRecord::CSV_HEADER
        ));
    }
    let headers: Vec<&str> = header.split(',').collect();
    let col = |name: &str| {
        headers
            .iter()
            .position(|h| *h == name)
            .unwrap_or_else(|| panic!("CSV_HEADER lost column {name}"))
    };
    let (c_fig, c_ds, c_scheme) = (col("figure"), col("ds"), col("scheme"));
    let int_cols = [col("threads"), col("key_range"), col("ops")];
    let float_cols = [col("seconds"), col("throughput_mops"), col("read_mops")];
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != headers.len() {
            return Err(format!(
                "row {} has {} fields, header has {}: {line}",
                i + 2,
                fields.len(),
                headers.len()
            ));
        }
        for c in [c_fig, c_ds, c_scheme] {
            if fields[c].is_empty() {
                return Err(format!("row {} has empty {} column", i + 2, headers[c]));
            }
        }
        for c in int_cols {
            fields[c]
                .parse::<u64>()
                .map_err(|e| format!("row {} column {}: {e}", i + 2, headers[c]))?;
        }
        for c in float_cols {
            let v = fields[c]
                .parse::<f64>()
                .map_err(|e| format!("row {} column {}: {e}", i + 2, headers[c]))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "row {} column {}: non-finite or negative value {v}",
                    i + 2,
                    headers[c]
                ));
            }
        }
        rows += 1;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn smoke_preset_covers_the_required_grid() {
        let cells = Preset::Smoke.cells();
        let schemes: BTreeSet<&str> = cells.iter().map(|c| c.scheme.name()).collect();
        let structures: BTreeSet<&str> = cells.iter().map(|c| c.ds.name()).collect();
        let threads: BTreeSet<usize> = cells.iter().map(|c| c.threads).collect();
        assert_eq!(schemes.len(), SchemeId::ALL.len(), "all 12 schemes");
        assert!(
            structures.len() >= 4,
            "at least 4 structures: {structures:?}"
        );
        assert!(structures.contains("SKL") && structures.contains("NMT"));
        assert!(threads.len() >= 2, "at least 2 thread counts");
        // Long-running-reads rows are present so the read-Mops figure
        // renders from every preset.
        assert!(cells.iter().any(|c| c.mix == MatrixMix::LongRunningReads));
        // Skew never rides on the long-running-reads shape (the runner
        // rejects that combination).
        assert!(cells
            .iter()
            .all(|c| c.mix != MatrixMix::LongRunningReads || c.skew == 0.0));
    }

    #[test]
    fn paper_preset_covers_every_structure() {
        let cells = Preset::Paper.cells();
        let structures: BTreeSet<&str> = cells.iter().map(|c| c.ds.name()).collect();
        assert_eq!(structures.len(), DsId::ALL.len());
        assert!(cells.iter().any(|c| c.skew > 0.0), "skew ablation present");
    }

    #[test]
    fn figure_tags_match_the_paper_numbering() {
        let tag = |ds, mix| {
            MatrixCell {
                scheme: SchemeId::Ebr,
                ds,
                threads: 2,
                mix,
                skew: 0.0,
                key_range: 64,
                duration_ms: 1,
                reclaim_freq: 64,
            }
            .figure_tag()
        };
        assert_eq!(tag(DsId::Dgt, MatrixMix::UpdateHeavy), "fig1a");
        assert_eq!(tag(DsId::Hmht, MatrixMix::UpdateHeavy), "fig1b");
        assert_eq!(tag(DsId::Abt, MatrixMix::UpdateHeavy), "fig1c");
        assert_eq!(tag(DsId::Hml, MatrixMix::UpdateHeavy), "fig2a");
        assert_eq!(tag(DsId::Ll, MatrixMix::UpdateHeavy), "fig2b");
        assert_eq!(tag(DsId::Abt, MatrixMix::ReadHeavy), "fig3a");
        assert_eq!(tag(DsId::Dgt, MatrixMix::ReadHeavy), "fig3b");
        assert_eq!(tag(DsId::Hml, MatrixMix::LongRunningReads), "fig4");
        assert_eq!(tag(DsId::Skl, MatrixMix::UpdateHeavy), "ext-skl-upd");
        assert_eq!(tag(DsId::Nmt, MatrixMix::ReadHeavy), "ext-nmt-rd");
    }

    #[test]
    fn filter_matches_on_cell_id() {
        let cell = MatrixCell {
            scheme: SchemeId::HazardPtrPop,
            ds: DsId::Skl,
            threads: 4,
            mix: MatrixMix::UpdateHeavy,
            skew: 0.0,
            key_range: 64,
            duration_ms: 1,
            reclaim_freq: 64,
        };
        assert!(cell.matches(""));
        assert!(cell.matches("skl"));
        assert!(cell.matches("HazardPtrPOP/SKL"));
        assert!(cell.matches("t4"));
        assert!(!cell.matches("NMT"));
        assert!(!cell.matches("t8"));
    }

    #[test]
    fn csv_validation_accepts_real_rows_and_rejects_damage() {
        let hdr = RunRecord::CSV_HEADER;
        let n = hdr.split(',').count();
        let mut row: Vec<String> = (0..n).map(|_| "1".to_string()).collect();
        row[0] = "fig2a".into();
        row[1] = "HML".into();
        row[2] = "EBR".into();
        let good = format!("{hdr}\n{}\n", row.join(","));
        assert_eq!(validate_csv(&good), Ok(1));
        assert!(validate_csv("bogus,header\n1,2\n").is_err());
        let short = format!("{hdr}\nfig2a,HML,EBR\n");
        assert!(validate_csv(&short).is_err());
        let mut bad_num = row.clone();
        bad_num[3] = "two".into(); // threads column
        let bad = format!("{hdr}\n{}\n", bad_num.join(","));
        assert!(validate_csv(&bad).is_err());
    }
}
