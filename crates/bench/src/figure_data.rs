//! Pivots matrix [`RunRecord`]s into gnuplot-ready `.dat` files.
//!
//! One file family per figure tag (see
//! [`crate::matrix::MatrixCell::figure_tag`]): a `-throughput.dat` and a
//! `-retire.dat` for every figure (the paper's left/right panels), plus a
//! `-readmops.dat` for the long-running-reads figures whose y-axis is
//! read throughput (Figure 4). Each file is a matrix with one row per
//! thread count and one column per scheme:
//!
//! ```text
//! # threads EBR HP HazardPtrPOP ...
//! 1 4.2 3.1 4.0 ...
//! 2 7.9 5.8 7.7 ...
//! ```
//!
//! Missing cells (a scheme that skipped a thread count) render as `-`,
//! which gnuplot treats as a gap rather than a zero.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};

use pop_workload::RunRecord;

/// Metric column to pivot on.
#[derive(Clone, Copy)]
enum Metric {
    Throughput,
    MaxRetireLen,
    ReadMops,
}

impl Metric {
    fn suffix(self) -> &'static str {
        match self {
            Metric::Throughput => "throughput",
            Metric::MaxRetireLen => "retire",
            Metric::ReadMops => "readmops",
        }
    }

    fn value(self, rec: &RunRecord) -> String {
        match self {
            Metric::Throughput => format!("{:.4}", rec.throughput_mops),
            Metric::MaxRetireLen => rec.max_retire_len.to_string(),
            Metric::ReadMops => format!("{:.4}", rec.read_mops),
        }
    }
}

fn render_one(
    dir: &Path,
    figure: &str,
    metric: Metric,
    records: &[&RunRecord],
) -> std::io::Result<PathBuf> {
    // Column order: first-appearance order, so plots list schemes the way
    // the matrix ran them (paper order), not alphabetically.
    let mut schemes: Vec<&str> = Vec::new();
    for r in records {
        if !schemes.contains(&r.scheme) {
            schemes.push(r.scheme);
        }
    }
    let threads: BTreeSet<usize> = records.iter().map(|r| r.threads).collect();

    let mut out = String::new();
    out.push_str("# threads");
    for s in &schemes {
        out.push(' ');
        out.push_str(s);
    }
    out.push('\n');
    for &t in &threads {
        out.push_str(&t.to_string());
        for s in &schemes {
            out.push(' ');
            match records.iter().find(|r| r.threads == t && r.scheme == *s) {
                Some(r) => out.push_str(&metric.value(r)),
                None => out.push('-'),
            }
        }
        out.push('\n');
    }

    let path = dir.join(format!("{figure}-{}.dat", metric.suffix()));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(out.as_bytes())?;
    Ok(path)
}

/// Renders every figure's `.dat` family under `dir` from `(figure_tag,
/// record)` pairs. Returns the paths written.
pub fn render_figure_data(
    records: &[(String, RunRecord)],
    dir: &Path,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    // Figure order = first appearance in the record stream.
    let mut figures: Vec<&str> = Vec::new();
    for (tag, _) in records {
        if !figures.contains(&tag.as_str()) {
            figures.push(tag);
        }
    }
    let mut paths = Vec::new();
    for fig in figures {
        let group: Vec<&RunRecord> = records
            .iter()
            .filter(|(tag, _)| tag == fig)
            .map(|(_, r)| r)
            .collect();
        paths.push(render_one(dir, fig, Metric::Throughput, &group)?);
        paths.push(render_one(dir, fig, Metric::MaxRetireLen, &group)?);
        // Read throughput is the headline metric only for the
        // long-running-reads figures (fig4 and its `ext-*-lrr` kin).
        if fig == "fig4" || fig.contains("-lrr") {
            paths.push(render_one(dir, fig, Metric::ReadMops, &group)?);
        }
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(scheme: &'static str, threads: usize, mops: f64) -> RunRecord {
        RunRecord {
            scheme,
            ds: "HML",
            threads,
            key_range: 256,
            ops: 1000,
            read_ops: 900,
            update_ops: 100,
            seconds: 0.1,
            throughput_mops: mops,
            read_mops: mops * 0.9,
            max_retire_len: 42,
            peak_live_bytes: 0,
            unreclaimed_nodes: 0,
            pings_sent: 0,
            pings_skipped: 0,
            pings_elided_adaptive: 0,
            membarrier_passes: 0,
            signals_avoided: 0,
            batches_sealed: 0,
            blocks_sealed_monotone: 0,
            blocks_sealed_era_monotone: 0,
            epoch_decay_steps: 0,
            bin_resizes: 0,
            orphans_stolen: 0,
            restarts: 0,
            publish_wait_timeouts: 0,
            pings_failed: 0,
            participants_reaped: 0,
            faults_injected: 0,
            pressure_soft_trips: 0,
            pressure_hard_trips: 0,
            pressure_emergency_trips: 0,
            blocks_quarantined: 0,
            blocks_unquarantined: 0,
            pool_blocks_trimmed: 0,
            slab_allocs: 0,
            slab_frees_whole: 0,
            version_aborts: 0,
            slab_released_bytes: 0,
        }
    }

    #[test]
    fn renders_threads_by_scheme_matrix_with_gaps() {
        let dir = std::env::temp_dir().join("pop_figure_data_test");
        let _ = std::fs::remove_dir_all(&dir);
        let records = vec![
            ("fig2a".to_string(), rec("EBR", 2, 1.0)),
            ("fig2a".to_string(), rec("EBR", 4, 2.0)),
            ("fig2a".to_string(), rec("HazardPtrPOP", 2, 0.9)),
            // HazardPtrPOP skipped threads=4 → "-" gap.
            ("fig4".to_string(), rec("EBR", 2, 3.0)),
        ];
        let paths = render_figure_data(&records, &dir).unwrap();
        // fig2a gets throughput+retire; fig4 additionally gets readmops.
        assert_eq!(paths.len(), 5);

        let th = std::fs::read_to_string(dir.join("fig2a-throughput.dat")).unwrap();
        let lines: Vec<&str> = th.lines().collect();
        assert_eq!(lines[0], "# threads EBR HazardPtrPOP");
        assert_eq!(lines[1], "2 1.0000 0.9000");
        assert_eq!(lines[2], "4 2.0000 -");

        let retire = std::fs::read_to_string(dir.join("fig2a-retire.dat")).unwrap();
        assert!(retire.lines().nth(1).unwrap().contains("42"));

        let rm = std::fs::read_to_string(dir.join("fig4-readmops.dat")).unwrap();
        assert_eq!(rm.lines().nth(1).unwrap(), "2 2.7000");
        assert!(!dir.join("fig2a-readmops.dat").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lrr_extension_tags_also_get_readmops() {
        let dir = std::env::temp_dir().join("pop_figure_data_lrr_test");
        let _ = std::fs::remove_dir_all(&dir);
        let records = vec![("ext-skl-lrr".to_string(), rec("EBR", 2, 1.0))];
        let paths = render_figure_data(&records, &dir).unwrap();
        assert!(paths
            .iter()
            .any(|p| p.ends_with("ext-skl-lrr-readmops.dat")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
