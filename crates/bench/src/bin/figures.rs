//! `figures` — regenerates every table and figure from the paper.
//!
//! ```text
//! figures <fig1a|fig1b|fig1c|fig2a|fig2b|fig3a|fig3b|fig4|fig5..fig11|
//!          robustness|ablation-c|ablation-freq|all|quick> [options]
//!
//! Options:
//!   --threads 1,2,4      thread counts to sweep (default: 1,N,2N for N CPUs)
//!   --seconds 1.0        duration per trial
//!   --size N             override key range
//!   --reclaim-freq N     override retire-list threshold
//!   --schemes A,B,C      scheme filter (names as in the paper's plots)
//!   --paper              use the paper's full-scale sizes
//!   --csv PATH           append rows to a CSV file (default results/pop.csv)
//! ```

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pop_bench::figures::{find, run_fig4_sweep, run_figure, SweepOptions, FIGURES};
use pop_bench::{run_one, DsId, SchemeId};
use pop_core::{Ebr, EpochPop, HazardPtrPop, Smr, SmrConfig};
use pop_ds::hml::HmList;
use pop_ds::ConcurrentMap;
use pop_workload::{report, OpMix, RunConfig, RunRecord, WorkloadKind};

fn usage() -> ! {
    let ids: Vec<&str> = FIGURES.iter().map(|f| f.id).collect();
    eprintln!(
        "usage: figures <{} | robustness | ablation-c | ablation-freq | latency | all | quick> \
         [--threads 1,2,4] [--seconds 1.0] [--size N] [--reclaim-freq N] \
         [--schemes A,B,C] [--paper] [--csv PATH]",
        ids.join("|")
    );
    std::process::exit(2);
}

struct Cli {
    command: String,
    opts: SweepOptions,
    csv: PathBuf,
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let mut opts = SweepOptions::default();
    let mut csv = PathBuf::from("results/pop.csv");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.threads = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --threads"))
                    .collect();
            }
            "--seconds" => {
                let v: f64 = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("bad --seconds");
                opts.duration = Duration::from_secs_f64(v);
            }
            "--size" => {
                opts.key_range = Some(
                    args.next()
                        .unwrap_or_else(|| usage())
                        .parse()
                        .expect("bad --size"),
                );
            }
            "--reclaim-freq" => {
                opts.reclaim_freq = Some(
                    args.next()
                        .unwrap_or_else(|| usage())
                        .parse()
                        .expect("bad --reclaim-freq"),
                );
            }
            "--schemes" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.schemes = Some(
                    v.split(',')
                        .map(|s| {
                            SchemeId::parse(s.trim())
                                .unwrap_or_else(|| panic!("unknown scheme {s}"))
                        })
                        .collect(),
                );
            }
            "--paper" => opts.paper_scale = true,
            "--csv" => csv = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    Cli { command, opts, csv }
}

fn emit(csv: &Path, rows: Vec<(String, RunRecord)>) {
    let records: Vec<RunRecord> = rows.iter().map(|(_, r)| r.clone()).collect();
    println!("{}", report::render_table(&records));
    for (fig, rec) in &rows {
        report::write_csv(csv, fig, std::slice::from_ref(rec)).expect("csv write");
    }
    println!("rows appended to {}\n", csv.display());
}

/// The robustness demonstration (paper §1/§4.2, and the premise of
/// EpochPOP): one reader stalls inside an operation while writers churn;
/// EBR's garbage grows without bound, the POP schemes stay bounded.
fn run_robustness(opts: &SweepOptions, csv: &Path) {
    fn stalled_trial<S: Smr>(duration: Duration) -> RunRecord {
        let threads = 2usize;
        let smr_cfg = SmrConfig::for_threads(threads + 1).with_reclaim_freq(512);
        let smr = S::new(smr_cfg);
        let map = Arc::new(HmList::with_domain(Arc::clone(&smr)));
        let stop = Arc::new(AtomicBool::new(false));

        // The stalled reader: enters an operation and sleeps through the
        // whole trial, pinning its announced epoch (if the scheme has one).
        let stall = {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let reg = map.smr().register(2);
                map.smr().begin_op(2);
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                map.smr().end_op(2);
                drop(reg);
            })
        };
        std::thread::sleep(Duration::from_millis(20));

        let mut handles = Vec::new();
        for tid in 0..threads {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let reg = map.smr().register(tid);
                let mut k = tid as u64;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    map.insert(tid, k % 4096, k);
                    map.remove(tid, k % 4096);
                    k = k.wrapping_add(7);
                    ops += 2;
                }
                drop(reg);
                ops
            }));
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
        let mut ops = 0;
        for h in handles {
            ops += h.join().unwrap();
        }
        stall.join().unwrap();
        let stats = smr.stats().snapshot();
        RunRecord {
            scheme: S::NAME,
            ds: "HML",
            threads,
            key_range: 4096,
            ops,
            read_ops: 0,
            update_ops: ops,
            seconds: duration.as_secs_f64(),
            throughput_mops: ops as f64 / duration.as_secs_f64() / 1e6,
            read_mops: 0.0,
            max_retire_len: stats.max_retire_len,
            peak_live_bytes: 0,
            unreclaimed_nodes: stats.unreclaimed_nodes(),
            pings_sent: stats.pings_sent,
            pings_skipped: stats.pings_skipped,
            pings_elided_adaptive: stats.pings_elided_adaptive,
            membarrier_passes: stats.membarrier_passes,
            signals_avoided: stats.signals_avoided,
            batches_sealed: stats.batches_sealed,
            blocks_sealed_monotone: stats.blocks_sealed_monotone,
            blocks_sealed_era_monotone: stats.blocks_sealed_era_monotone,
            epoch_decay_steps: stats.epoch_decay_steps,
            bin_resizes: stats.bin_resizes,
            orphans_stolen: stats.orphans_stolen,
            restarts: stats.restarts,
            publish_wait_timeouts: stats.publish_wait_timeouts,
            pings_failed: stats.pings_failed,
            participants_reaped: stats.participants_reaped,
            faults_injected: stats.faults_injected,
            pressure_soft_trips: stats.pressure_soft_trips,
            pressure_hard_trips: stats.pressure_hard_trips,
            pressure_emergency_trips: stats.pressure_emergency_trips,
            blocks_quarantined: stats.blocks_quarantined,
            blocks_unquarantined: stats.blocks_unquarantined,
            pool_blocks_trimmed: stats.pool_blocks_trimmed,
            slab_allocs: stats.slab_allocs,
            slab_frees_whole: stats.slab_frees_whole,
            version_aborts: stats.version_aborts,
            slab_released_bytes: stats.slab_released_bytes,
        }
    }

    println!("robustness: 2 writers churn while 1 reader stalls in-op");
    println!("expect: EBR unreclaimed grows with work; POP schemes bounded\n");
    let rows = vec![
        (
            "robustness".to_string(),
            stalled_trial::<Ebr>(opts.duration),
        ),
        (
            "robustness".to_string(),
            stalled_trial::<HazardPtrPop>(opts.duration),
        ),
        (
            "robustness".to_string(),
            stalled_trial::<EpochPop>(opts.duration),
        ),
    ];
    emit(csv, rows);
}

/// Ablation A1: EpochPOP's escalation multiplier `C` (DESIGN.md §4).
fn run_ablation_c(opts: &SweepOptions, csv: &Path) {
    let threads = *opts.threads.iter().max().unwrap_or(&2);
    let mut rows = Vec::new();
    for c in [1usize, 2, 4, 8] {
        let cfg = RunConfig {
            threads,
            duration: opts.duration,
            key_range: 2_000,
            kind: WorkloadKind::Uniform(OpMix::UPDATE_HEAVY),
            prefill: true,
            pin_threads: true,
            seed: 0xAB1,
            skew: 0.0,
        };
        let smr_cfg = SmrConfig::for_threads(threads)
            .with_reclaim_freq(opts.reclaim_freq.unwrap_or(2_048))
            .with_pop_c(c);
        let rec = run_one(SchemeId::EpochPop, DsId::Hml, &cfg, smr_cfg);
        rows.push((format!("ablation-c/C{}", c), rec));
    }
    emit(csv, rows);
}

/// Ablation A2: retire-list threshold sweep (cf. the paper's footnote on
/// retire-list sizing and Kim et al. 2024).
fn run_ablation_freq(opts: &SweepOptions, csv: &Path) {
    let threads = *opts.threads.iter().max().unwrap_or(&2);
    let schemes = opts.schemes.clone().unwrap_or_else(|| {
        vec![
            SchemeId::Hp,
            SchemeId::HazardPtrPop,
            SchemeId::EpochPop,
            SchemeId::Ebr,
            SchemeId::NbrPlus,
        ]
    });
    let mut rows = Vec::new();
    for freq in [512usize, 2_048, 8_192, 24_576] {
        for &scheme in &schemes {
            let cfg = RunConfig {
                threads,
                duration: opts.duration,
                key_range: 2_000,
                kind: WorkloadKind::Uniform(OpMix::UPDATE_HEAVY),
                prefill: true,
                pin_threads: true,
                seed: 0xAB2,
                skew: 0.0,
            };
            let smr_cfg = SmrConfig::for_threads(threads).with_reclaim_freq(freq);
            let rec = run_one(scheme, DsId::Hml, &cfg, smr_cfg);
            rows.push((format!("ablation-freq/R{}", freq), rec));
        }
    }
    emit(csv, rows);
}

/// Ablation A3 (extension): Zipf key skew — does POP's advantage survive
/// contention on hot keys? The paper evaluates uniform keys only.
fn run_ablation_skew(opts: &SweepOptions, csv: &Path) {
    let threads = *opts.threads.iter().max().unwrap_or(&2);
    let schemes = opts.schemes.clone().unwrap_or_else(|| {
        vec![
            SchemeId::Ebr,
            SchemeId::Hp,
            SchemeId::HazardPtrPop,
            SchemeId::EpochPop,
        ]
    });
    let mut rows = Vec::new();
    for skew in [0.0f64, 0.5, 0.9, 1.2] {
        for &scheme in &schemes {
            let cfg = RunConfig {
                threads,
                duration: opts.duration,
                key_range: 8_192,
                kind: WorkloadKind::Uniform(OpMix::UPDATE_HEAVY),
                prefill: true,
                pin_threads: true,
                seed: 0xAB3,
                skew,
            };
            let smr_cfg = SmrConfig::for_threads(threads)
                .with_reclaim_freq(opts.reclaim_freq.unwrap_or(2_048));
            let rec = run_one(scheme, DsId::Hml, &cfg, smr_cfg);
            rows.push((format!("ablation-skew/s{:.1}", skew), rec));
        }
    }
    emit(csv, rows);
}

/// Extension experiment: per-operation tail latency under a read-heavy
/// mix — do reclamation pings surface at readers' p99/p999?
fn run_latency_tables(opts: &SweepOptions) {
    let threads = *opts.threads.iter().max().unwrap_or(&2);
    let schemes = opts.schemes.clone().unwrap_or_else(|| {
        vec![
            SchemeId::Nr,
            SchemeId::Ebr,
            SchemeId::Hp,
            SchemeId::HazardPtrPop,
            SchemeId::EpochPop,
            SchemeId::NbrPlus,
        ]
    });
    println!(
        "read-heavy HML, {} threads, retire threshold {} — per-op latency (ns)\n",
        threads,
        opts.reclaim_freq.unwrap_or(2_048)
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>10} | {:>9} {:>9}",
        "scheme", "read p50", "read p99", "p999", "max", "upd p50", "upd p99"
    );
    for scheme in schemes {
        let cfg = RunConfig {
            threads,
            duration: opts.duration,
            key_range: 2_000,
            kind: WorkloadKind::Uniform(OpMix::READ_HEAVY),
            prefill: true,
            pin_threads: true,
            seed: 0x1A7,
            skew: 0.0,
        };
        let smr_cfg =
            SmrConfig::for_threads(threads).with_reclaim_freq(opts.reclaim_freq.unwrap_or(2_048));
        let rep = pop_bench::run_latency_one(scheme, DsId::Hml, &cfg, smr_cfg);
        let (rp50, rp99, rp999, rmax) = rep.read_ns;
        let (up50, up99, _, _) = rep.update_ns;
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>10} | {:>9} {:>9}",
            rep.scheme, rp50, rp99, rp999, rmax, up50, up99
        );
    }
    println!("\n(samples every 16th op; ~6%% bucket error)");
}

fn main() {
    let cli = parse_cli();
    let cmd = cli.command.to_ascii_lowercase();
    match cmd.as_str() {
        "all" => {
            for spec in FIGURES {
                println!("=== {} — {} ===", spec.id, spec.caption);
                let rows = if spec.id == "fig4" {
                    run_fig4_sweep(&cli.opts)
                } else {
                    run_figure(spec, &cli.opts)
                };
                emit(&cli.csv, rows);
            }
            run_robustness(&cli.opts, &cli.csv);
            run_ablation_c(&cli.opts, &cli.csv);
            run_ablation_freq(&cli.opts, &cli.csv);
        }
        "quick" => {
            let mut opts = cli.opts.clone();
            opts.duration = Duration::from_millis(200);
            opts.threads = vec![2];
            for id in ["fig2a", "fig2b", "fig1a", "fig1b", "fig1c"] {
                let spec = find(id).unwrap();
                println!("=== {} — {} ===", spec.id, spec.caption);
                emit(&cli.csv, run_figure(spec, &opts));
            }
        }
        "robustness" => run_robustness(&cli.opts, &cli.csv),
        "ablation-c" => run_ablation_c(&cli.opts, &cli.csv),
        "ablation-freq" => run_ablation_freq(&cli.opts, &cli.csv),
        "ablation-skew" => run_ablation_skew(&cli.opts, &cli.csv),
        "latency" => run_latency_tables(&cli.opts),
        "fig4" => {
            let rows = run_fig4_sweep(&cli.opts);
            emit(&cli.csv, rows);
        }
        other => match find(other) {
            Some(spec) => {
                println!("=== {} — {} ===", spec.id, spec.caption);
                emit(&cli.csv, run_figure(spec, &cli.opts));
            }
            None => usage(),
        },
    }
}
