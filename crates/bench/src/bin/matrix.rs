//! `matrix` — drives the full `scheme × structure × threads × mix`
//! evaluation grid, streams every trial into `matrix.csv`, renders
//! gnuplot figure data, then re-reads and validates its own output.
//!
//! ```text
//! matrix [--preset smoke|paper|full] [--filter SUBSTR] [--out DIR] [--list]
//! ```
//!
//! `--filter` keeps cells whose id (`scheme/ds/t<threads>/<mix>`)
//! contains the substring, case-insensitively. `--list` prints the cell
//! ids the current preset+filter would run, without running them.
//! Exits nonzero if any argument is malformed or the written CSV fails
//! validation.

use std::path::PathBuf;
use std::process::ExitCode;

use pop_bench::figure_data::render_figure_data;
use pop_bench::matrix::{validate_csv, MatrixCell, Preset};
use pop_workload::write_csv;

fn usage() -> ExitCode {
    eprintln!("usage: matrix [--preset smoke|paper|full] [--filter SUBSTR] [--out DIR] [--list]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut preset = Preset::Smoke;
    let mut filter = String::new();
    let mut out_dir = PathBuf::from("target/bench");
    let mut list_only = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--preset" => {
                let Some(p) = argv.next().as_deref().and_then(Preset::parse) else {
                    eprintln!("--preset expects smoke|paper|full");
                    return usage();
                };
                preset = p;
            }
            "--filter" => {
                let Some(f) = argv.next() else {
                    eprintln!("--filter expects a substring");
                    return usage();
                };
                filter = f;
            }
            "--out" => {
                let Some(d) = argv.next() else {
                    eprintln!("--out expects a directory");
                    return usage();
                };
                out_dir = PathBuf::from(d);
            }
            "--list" => list_only = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }

    let cells: Vec<MatrixCell> = preset
        .cells()
        .into_iter()
        .filter(|c| c.matches(&filter))
        .collect();
    if cells.is_empty() {
        eprintln!("filter {filter:?} matched no cells");
        return ExitCode::FAILURE;
    }

    if list_only {
        for c in &cells {
            println!("{}", c.id());
        }
        println!("{} cells", cells.len());
        return ExitCode::SUCCESS;
    }

    let csv_path = out_dir.join("matrix.csv");
    if csv_path.exists() {
        if let Err(e) = std::fs::remove_file(&csv_path) {
            eprintln!("cannot clear {}: {e}", csv_path.display());
            return ExitCode::FAILURE;
        }
    }

    let total = cells.len();
    let mut records = Vec::with_capacity(total);
    for (i, cell) in cells.iter().enumerate() {
        eprintln!("[{}/{total}] {}", i + 1, cell.id());
        let rec = cell.run();
        let tag = cell.figure_tag();
        // Stream each trial to disk as it completes, so a crash mid-grid
        // still leaves every finished row on disk.
        if let Err(e) = write_csv(&csv_path, &tag, std::slice::from_ref(&rec)) {
            eprintln!("cannot write {}: {e}", csv_path.display());
            return ExitCode::FAILURE;
        }
        records.push((tag, rec));
    }

    let fig_dir = out_dir.join("figures");
    match render_figure_data(&records, &fig_dir) {
        Ok(paths) => eprintln!(
            "wrote {} figure files to {}",
            paths.len(),
            fig_dir.display()
        ),
        Err(e) => {
            eprintln!("figure rendering failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Self-check: re-read what we wrote and validate the schema, so CI
    // fails loudly on a malformed CSV rather than archiving garbage.
    let text = match std::fs::read_to_string(&csv_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot re-read {}: {e}", csv_path.display());
            return ExitCode::FAILURE;
        }
    };
    match validate_csv(&text) {
        Ok(rows) if rows == total => {
            println!("{total} cells -> {} (validated)", csv_path.display());
            ExitCode::SUCCESS
        }
        Ok(rows) => {
            eprintln!("row count mismatch: ran {total} cells, CSV has {rows} rows");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("CSV validation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
