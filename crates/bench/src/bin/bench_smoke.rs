//! CI bench smoke: a reduced-iteration, machine-readable slice of the
//! perf surface this repo's PRs optimize, so the trajectory is tracked in
//! one JSON artifact instead of scraped bench logs.
//!
//! Measures:
//!
//! * **Sweep filter cost** (ns/node) at reserved-set sizes 4 / 64 / 512
//!   for the merge-join path vs the per-node binary-search baseline, plus
//!   the speedup ratio.
//! * **Arena-binned fill delta** (PR 4): the interleaved-arena churn
//!   workload (four address-ascending bursts retired round-robin) swept
//!   once per fill, with one fill block vs eight arena bins — plus the
//!   monotone sealed-block share each side achieves
//!   (`blocks_sealed_monotone / batches_sealed`).
//! * **Publish wait wake latency**: a full `ping → handler publish → wake`
//!   handshake against one busy in-op peer, futex-parked vs yield.
//! * **Publish-mode pass cost** (PR 8): a full reclamation pass against
//!   4 / 16 / 64 busy in-op peers under the signal fan-out (yield and
//!   futex waits) vs the single-syscall membarrier publish path, plus the
//!   membarrier-vs-signal speedup per peer count.
//! * **Idle-domain pass cost** (PR 5): the amortized cost of a
//!   retire-triggered pass on a domain whose sweeps free nothing (one
//!   stalled reader pins everything), with the adaptive controller's
//!   epoch-cadence decay on vs off.
//! * **Adaptive bin convergence** (PR 5): sweep ns/node with auto-sized
//!   bins against the best and worst static settings, on both the
//!   single-stream and the interleaved-arena workloads.
//! * **Pressure ladder** (bounded-garbage PR): escalation trips, blocks
//!   quarantined and pool blocks trimmed under a stalled reader with
//!   tight watermarks, plus the one-flush recovery latency once the
//!   stall clears — and a parity check that the default watermarks stay
//!   silent (gauge enabled, zero trips) under quiescent churn.
//!
//! * **Matrix smoke** (PR 9): cells of the evaluation matrix — the two
//!   new structures (skip list, NM tree) under HazardPtrPOP and EBR, plus
//!   a VBR cell — run through the same [`pop_bench::matrix`] path the
//!   `matrix` binary uses, reporting throughput and max retire length per
//!   cell.
//!
//! * **Slab settlement** (PR 10): the whole-slab settle path (owned-arena
//!   bump fills whose retire blocks pass one range test and free wholesale
//!   into their slab) vs the per-node merge-join sweep over a Box-backed
//!   address-random fill, plus the `slab_frees_whole` count and the bytes
//!   `madvise`d back to the OS after the drain.
//!
//! Usage: `bench_smoke [--out PATH] [--iters N]` (defaults:
//! `BENCH_pr10.json`, 60 iterations per measurement).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pop_bench::matrix::{MatrixCell, MatrixMix};
use pop_bench::{DsId, SchemeId};
use pop_core::config::PublishMode;
use pop_core::testing::SweepBench;
use pop_core::{retire_node, Ebr, HasHeader, HazardPtrPop, Header, Smr, SmrConfig};

#[repr(C)]
struct Node {
    hdr: Header,
    v: u64,
}
unsafe impl HasHeader for Node {}

const SWEEP_NODES: usize = 1024;

/// Mean ns/node for one filter strategy over fresh, address-random retire
/// lists ("churn": every block swept exactly once, then drained).
fn churn_ns_per_node(merge_join: bool, rsize: usize, iters: u32) -> f64 {
    let mut bench = SweepBench::new();
    // Warmup grows the list's block pools so timed sweeps don't allocate.
    let mut total_ns = 0u128;
    for i in 0..iters + 2 {
        let ptrs = bench.fill(SWEEP_NODES);
        let mut reserved: Vec<u64> = ptrs
            .iter()
            .copied()
            .step_by((SWEEP_NODES / rsize).max(1))
            .take(rsize)
            .collect();
        reserved.sort_unstable();
        let t0 = Instant::now();
        let freed = if merge_join {
            bench.sweep_merge_join(&reserved)
        } else {
            bench.sweep_binary_search(&reserved)
        };
        let dt = t0.elapsed();
        assert_eq!(freed, SWEEP_NODES - reserved.len());
        bench.drain();
        if i >= 2 {
            total_ns += dt.as_nanos();
        }
    }
    total_ns as f64 / iters as f64 / SWEEP_NODES as f64
}

/// Mean ns/node for one merge-join churn sweep over the interleaved-arena
/// workload with `bins` fill bins, plus the monotone sealed-block share.
/// The bursts are sized so each spans its own `ARENA_SHIFT` region —
/// small bursts would share one arena and nothing could separate them.
fn binned_churn_ns_per_node(bins: usize, rsize: usize, iters: u32) -> (f64, f64) {
    const STREAMS: usize = 4;
    const NODES: usize = SWEEP_NODES * 8;
    let mut bench = SweepBench::with_bins(bins);
    let mut total_ns = 0u128;
    for i in 0..iters + 2 {
        let ptrs = bench.fill_interleaved(NODES, STREAMS);
        let mut reserved: Vec<u64> = ptrs
            .iter()
            .copied()
            .step_by((NODES / rsize).max(1))
            .take(rsize)
            .collect();
        reserved.sort_unstable();
        let t0 = Instant::now();
        let freed = bench.sweep_merge_join(&reserved);
        let dt = t0.elapsed();
        assert_eq!(freed, ptrs.len() - reserved.len());
        bench.drain();
        if i >= 2 {
            total_ns += dt.as_nanos();
        }
    }
    let (monotone, sealed) = bench.monotone_share();
    let share = if sealed == 0 {
        0.0
    } else {
        monotone as f64 / sealed as f64
    };
    (total_ns as f64 / iters as f64 / NODES as f64, share)
}

/// Mean ns/node re-sweeping a fully pinned list of `rsize` nodes — the
/// stalled-reader steady state, where reclaimers re-filter the same
/// garbage every pass. The merge-join path amortizes its per-block sort
/// across passes (untouched blocks keep their sort cache); the baseline
/// re-runs every binary search every pass.
fn pinned_ns_per_node(merge_join: bool, rsize: usize, iters: u32) -> f64 {
    let mut bench = SweepBench::new();
    let mut reserved = bench.fill(rsize);
    reserved.sort_unstable();
    for _ in 0..2 {
        let freed = if merge_join {
            bench.sweep_merge_join(&reserved)
        } else {
            bench.sweep_binary_search(&reserved)
        };
        assert_eq!(freed, 0, "everything pinned");
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let freed = if merge_join {
            bench.sweep_merge_join(&reserved)
        } else {
            bench.sweep_binary_search(&reserved)
        };
        assert_eq!(freed, 0);
    }
    let total = t0.elapsed();
    bench.drain();
    total.as_nanos() as f64 / iters as f64 / rsize as f64
}

/// Amortized cost (ns) of one retire-*triggered* reclamation pass on an
/// idle (fully pinned) EBR domain, `(pass_ns, decay_steps)`. A peer
/// parks in-op so every sweep is barren; with `retire_bins = 1` and
/// `retire_batch = 32` the trigger points are deterministic (every
/// `reclaim_freq`-th retire), so exactly those retire calls are timed —
/// each carries one push + seal (identical in both configurations) plus
/// the triggered pass, which the decayed controller thins away.
fn idle_pass_ns(adaptive: bool, triggers: u32) -> (f64, u64) {
    const RECLAIM_FREQ: usize = 256;
    // A wide domain: the per-pass reservation scan walks 64 thread slots,
    // the cost pool the decay exists to shrink.
    let smr = Ebr::new(
        SmrConfig::for_tests(64)
            .with_reclaim_freq(RECLAIM_FREQ)
            .with_retire_bins(1)
            .with_adaptive(adaptive),
    );
    let reg0 = smr.register(0);
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel();
    let pinner = std::thread::spawn({
        let smr = Arc::clone(&smr);
        let stop = Arc::clone(&stop);
        move || {
            let reg1 = smr.register(1);
            smr.begin_op(1); // pins the epoch: every sweep is barren
            tx.send(()).unwrap();
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            smr.end_op(1);
            drop(reg1);
        }
    });
    rx.recv().unwrap();
    let mut timed_ns = 0u128;
    let mut timed = 0u32;
    for i in 1..=(RECLAIM_FREQ as u64) * triggers as u64 {
        smr.note_alloc(0, core::mem::size_of::<Node>());
        let p = Box::into_raw(Box::new(Node {
            hdr: Header::new(0, core::mem::size_of::<Node>()),
            v: i,
        }));
        if i.is_multiple_of(RECLAIM_FREQ as u64) {
            let t0 = Instant::now();
            // SAFETY: never shared; retired exactly once.
            unsafe { retire_node(&*smr, 0, p) };
            timed_ns += t0.elapsed().as_nanos();
            timed += 1;
        } else {
            // SAFETY: as above.
            unsafe { retire_node(&*smr, 0, p) };
        }
    }
    let decay_steps = smr.stats().snapshot().epoch_decay_steps;
    stop.store(true, Ordering::Release);
    pinner.join().unwrap();
    smr.flush(0);
    assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
    drop(reg0);
    (timed_ns as f64 / timed as f64, decay_steps)
}

/// Merge-join sweep ns/node for three bin configurations — static 1,
/// static 8, adaptive (initial 4) — over the workload `fill`, with the
/// rounds *interleaved* across the three instances so every configuration
/// sees the same allocator state (running them back to back would hand
/// the later ones a progressively fragmented heap). Adaptive gets
/// `warmup` extra unmeasured rounds first to converge. Returns
/// `(static1_ns, static8_ns, adaptive_ns, adaptive_final_bins)`.
fn adaptive_bins_ns(
    mut fill: impl FnMut(&mut SweepBench) -> Vec<u64>,
    rsize: usize,
    warmup: u32,
    rounds: u32,
) -> (f64, f64, f64, usize) {
    let mut benches = [
        SweepBench::with_bins(1),
        SweepBench::with_bins(8),
        SweepBench::adaptive(4),
    ];
    let one_round = |bench: &mut SweepBench,
                     fill: &mut dyn FnMut(&mut SweepBench) -> Vec<u64>|
     -> (u128, usize) {
        let ptrs = fill(bench);
        let mut reserved: Vec<u64> = ptrs
            .iter()
            .copied()
            .step_by((ptrs.len() / rsize).max(1))
            .take(rsize)
            .collect();
        reserved.sort_unstable();
        let t0 = Instant::now();
        let freed = bench.sweep_merge_join(&reserved);
        let dt = t0.elapsed();
        assert_eq!(freed, ptrs.len() - reserved.len());
        bench.drain();
        (dt.as_nanos(), ptrs.len())
    };
    // Adaptive convergence + pool/heap warmup for everyone (1 round each
    // per adaptive warmup round keeps the interleaving symmetric).
    for _ in 0..warmup {
        for b in &mut benches {
            one_round(b, &mut fill);
        }
    }
    let mut ns = [0u128; 3];
    let mut nodes = [0usize; 3];
    for _ in 0..rounds {
        for (i, b) in benches.iter_mut().enumerate() {
            let (dt, n) = one_round(b, &mut fill);
            ns[i] += dt;
            nodes[i] += n;
        }
    }
    (
        ns[0] as f64 / nodes[0] as f64,
        ns[1] as f64 / nodes[1] as f64,
        ns[2] as f64 / nodes[2] as f64,
        benches[2].bins(),
    )
}

/// Pressure-ladder smoke (bounded-garbage PR): a stalled reader pins a
/// backlog under tight watermarks on an EBR domain. Returns the trip
/// counts `(soft, hard, emergency)`, the blocks quarantined and pool
/// blocks trimmed, and the recovery latency — wall ns for the single
/// flush that drains everything once the stall clears.
fn pressure_ladder_smoke() -> (u64, u64, u64, u64, u64, f64) {
    let smr = Ebr::new(
        SmrConfig::for_tests(2)
            .with_reclaim_freq(16)
            .with_retire_bins(1)
            .with_pressure_watermarks(64, 96, 128)
            .with_free_pool_cap(4),
    );
    let reg0 = smr.register(0);
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel();
    let pinner = std::thread::spawn({
        let smr = Arc::clone(&smr);
        let stop = Arc::clone(&stop);
        move || {
            let reg1 = smr.register(1);
            smr.begin_op(1); // pins the epoch and stalls
            tx.send(()).unwrap();
            while !stop.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            smr.end_op(1);
            drop(reg1);
        }
    });
    rx.recv().unwrap();
    for i in 0..1_000u64 {
        smr.note_alloc(0, core::mem::size_of::<Node>());
        let p = Box::into_raw(Box::new(Node {
            hdr: Header::new(0, core::mem::size_of::<Node>()),
            v: i,
        }));
        // SAFETY: never shared; retired exactly once.
        unsafe { retire_node(&*smr, 0, p) };
    }
    smr.flush(0);
    let s = smr.stats().snapshot();
    stop.store(true, Ordering::Release);
    pinner.join().unwrap();
    let t0 = Instant::now();
    smr.flush(0);
    let recovery_ns = t0.elapsed().as_nanos() as f64;
    assert_eq!(
        smr.stats().snapshot().unreclaimed_nodes(),
        0,
        "pressure ladder must drain within one pass of the stall clearing"
    );
    drop(reg0);
    (
        s.pressure_soft_trips,
        s.pressure_hard_trips,
        s.pressure_emergency_trips,
        s.blocks_quarantined,
        s.pool_blocks_trimmed,
        recovery_ns,
    )
}

/// Mean ns per full ping→publish→wake handshake against one busy peer.
fn wait_wake_ns(futex: bool, iters: u32) -> f64 {
    let smr = HazardPtrPop::new(
        SmrConfig::for_tests(2)
            .with_reclaim_freq(1 << 20)
            .with_publish_spin(8)
            .with_futex_wait(futex),
    );
    let reg0 = smr.register(0);
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel();
    let peer = std::thread::spawn({
        let smr = Arc::clone(&smr);
        let stop = Arc::clone(&stop);
        move || {
            let reg1 = smr.register(1);
            // Busy in-op peer holding a reservation: every pass pings it
            // and waits for its handler.
            let dummy = Box::into_raw(Box::new(Node {
                hdr: Header::new(0, core::mem::size_of::<Node>()),
                v: 0,
            }));
            let src = AtomicPtr::new(dummy);
            let _ = smr.protect(1, 0, &src).unwrap();
            tx.send(()).unwrap();
            while !stop.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            smr.end_op(1);
            drop(reg1);
            // SAFETY: never retired; owned by this closure.
            unsafe { drop(Box::from_raw(dummy)) };
        }
    });
    rx.recv().unwrap();
    // One retired node so passes do real (tiny) work; warmup first.
    for _ in 0..3 {
        smr.flush(0);
    }
    let t0 = Instant::now();
    for i in 0..iters as u64 {
        smr.note_alloc(0, core::mem::size_of::<Node>());
        let p = Box::into_raw(Box::new(Node {
            hdr: Header::new(0, core::mem::size_of::<Node>()),
            v: i,
        }));
        // SAFETY: never shared; retired exactly once.
        unsafe { retire_node(&*smr, 0, p) };
        smr.flush(0);
    }
    let total = t0.elapsed();
    stop.store(true, Ordering::Release);
    peer.join().unwrap();
    drop(reg0);
    total.as_nanos() as f64 / iters as f64
}

/// Mean ns per full reclamation pass against `peers` busy in-op readers,
/// under one publish mode (PR 8). The signal flavors pay one `tgkill` +
/// handler publish + wait per peer; membarrier replaces the whole fan-out
/// with a single `membarrier(2)` heavy barrier — the gap is the tentpole
/// measurement, and it widens with the peer count (64 peers oversubscribes
/// typical CI hosts, the paper's §4.1.2 worst case).
fn publish_pass_ns(mode: PublishMode, peers: usize, iters: u32) -> f64 {
    let smr = HazardPtrPop::new(
        SmrConfig::for_tests(peers + 1)
            .with_reclaim_freq(1 << 20)
            .with_publish_spin(8)
            .with_publish_mode(mode),
    );
    let reg0 = smr.register(0);
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel();
    let handles: Vec<_> = (1..=peers)
        .map(|tid| {
            let smr = Arc::clone(&smr);
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let reg = smr.register(tid);
                let dummy = Box::into_raw(Box::new(Node {
                    hdr: Header::new(0, core::mem::size_of::<Node>()),
                    v: 0,
                }));
                let src = AtomicPtr::new(dummy);
                let _ = smr.protect(tid, 0, &src).unwrap();
                tx.send(()).unwrap();
                // Busy in-op reader; the yield keeps oversubscribed runs
                // progressing (everyone must get scheduled for handlers —
                // or, under membarrier, for the IPI — to land).
                while !stop.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
                smr.end_op(tid);
                drop(reg);
                // SAFETY: never retired; owned by this closure.
                unsafe { drop(Box::from_raw(dummy)) };
            })
        })
        .collect();
    for _ in 0..peers {
        rx.recv().unwrap();
    }
    for _ in 0..3 {
        smr.flush(0);
    }
    let t0 = Instant::now();
    for i in 0..iters as u64 {
        smr.note_alloc(0, core::mem::size_of::<Node>());
        let p = Box::into_raw(Box::new(Node {
            hdr: Header::new(0, core::mem::size_of::<Node>()),
            v: i,
        }));
        // SAFETY: never shared; retired exactly once.
        unsafe { retire_node(&*smr, 0, p) };
        smr.flush(0);
    }
    let total = t0.elapsed();
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    drop(reg0);
    total.as_nanos() as f64 / iters as f64
}

/// PR 9 matrix smoke: the two new structures under one POP scheme and one
/// epoch baseline — plus scheme #12 (VBR, PR 10) on the list it exercises
/// hardest — driven through the same `MatrixCell::run` path as the
/// `matrix` binary. Returns `(cell_id, throughput_mops, max_retire_len)`
/// rows.
fn matrix_smoke() -> Vec<(String, f64, u64)> {
    let cells = [
        (SchemeId::HazardPtrPop, DsId::Skl),
        (SchemeId::HazardPtrPop, DsId::Nmt),
        (SchemeId::Ebr, DsId::Skl),
        (SchemeId::Ebr, DsId::Nmt),
        (SchemeId::Vbr, DsId::Hml),
    ];
    cells
        .into_iter()
        .map(|(scheme, ds)| {
            let cell = MatrixCell {
                scheme,
                ds,
                threads: 2,
                mix: MatrixMix::UpdateHeavy,
                skew: 0.0,
                key_range: 1024,
                duration_ms: 40,
                reclaim_freq: 512,
            };
            let rec = cell.run();
            assert!(rec.ops > 0, "{} executed no ops", cell.id());
            (cell.id(), rec.throughput_mops, rec.max_retire_len)
        })
        .collect()
}

/// PR 10: whole-slab settlement vs the merge-join sweep, at the same node
/// and reservation counts. The baseline fills `Box`-backed (address-random
/// after heap churn) with the reservations spread across the list, so
/// nearly every block pays the per-node merge-join; the slab side
/// bump-fills the owned arenas with the reservations drawn from the tail,
/// so the reserved window misses all but the last block(s) and the rest
/// settle whole — one range test, then a wholesale free into their slab.
/// Returns `(slab_ns_per_node, merge_join_ns_per_node, slab_frees_whole,
/// slab_released_bytes)`.
fn slab_settlement(iters: u32) -> (f64, f64, u64, u64) {
    const NODES: usize = SWEEP_NODES * 4;
    const RSIZE: usize = 64;
    // The two sides run INTERLEAVED round-robin (as the PR-5 comparisons
    // do) so host-load drift across the measurement hits both equally
    // instead of biasing whichever side ran later, and each side reports
    // its fastest iteration: scheduling noise is strictly additive, so
    // min-of-iters is the algorithmic cost, not the host's mood.
    let mut box_bench = SweepBench::new();
    let mut slab_bench = SweepBench::new();
    let mut box_ns = u128::MAX;
    let mut slab_ns = u128::MAX;
    for i in 0..iters + 2 {
        let ptrs = box_bench.fill(NODES);
        let mut reserved: Vec<u64> = ptrs
            .iter()
            .copied()
            .step_by(NODES / RSIZE)
            .take(RSIZE)
            .collect();
        reserved.sort_unstable();
        let t0 = Instant::now();
        let freed = box_bench.sweep_merge_join(&reserved);
        let dt = t0.elapsed();
        assert_eq!(freed, NODES - RSIZE);
        box_bench.drain();
        if i >= 2 {
            box_ns = box_ns.min(dt.as_nanos());
        }

        let ptrs = slab_bench.fill_slab(NODES);
        let mut reserved: Vec<u64> = ptrs[NODES - RSIZE..].to_vec();
        reserved.sort_unstable();
        let t0 = Instant::now();
        let freed = slab_bench.sweep_merge_join(&reserved);
        let dt = t0.elapsed();
        assert_eq!(freed, NODES - RSIZE);
        slab_bench.drain();
        if i >= 2 {
            slab_ns = slab_ns.min(dt.as_nanos());
        }
    }
    let frees_whole = slab_bench.slab_frees_whole();
    assert!(frees_whole > 0, "slab fills must settle blocks whole");
    // Seal the bench thread's actives so the final drain settles every
    // slab: the released-bytes gauge only moves for sealed slabs.
    pop_core::slab::release_thread_slabs();
    let released = pop_core::slab::released_bytes();
    assert!(released > 0, "drained slabs must hand pages back to the OS");
    (
        slab_ns as f64 / NODES as f64,
        box_ns as f64 / NODES as f64,
        frees_whole,
        released,
    )
}

fn main() {
    let mut out_path = String::from("BENCH_pr10.json");
    let mut iters: u32 = 60;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a count")
                    .parse()
                    .expect("--iters must be a number")
            }
            other => {
                eprintln!("usage: bench_smoke [--out PATH] [--iters N] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    // Monotone sealed-block share on the plain sequential-fill workload
    // (fresh ascending allocations + LIFO drain/refill cycles) with the
    // default bin count — the ISSUE 4 acceptance number (target ≥ 0.8).
    // Measured FIRST: the share reflects allocator address order, and the
    // churn benches below deliberately fragment the heap.
    let seq_share = {
        let mut bench = SweepBench::with_bins(4);
        for _ in 0..8 {
            bench.fill(SWEEP_NODES);
            let freed = bench.sweep_merge_join(&[]);
            assert_eq!(freed, SWEEP_NODES);
        }
        let (monotone, sealed) = bench.monotone_share();
        monotone as f64 / sealed.max(1) as f64
    };
    println!("sequential_fill monotone share (bins=4): {seq_share:.2}");

    let mut sweeps = String::new();
    for (i, &rsize) in [4usize, 64, 512].iter().enumerate() {
        let churn_mj = churn_ns_per_node(true, rsize, iters);
        let churn_bs = churn_ns_per_node(false, rsize, iters);
        let pin_mj = pinned_ns_per_node(true, rsize, iters * 4);
        let pin_bs = pinned_ns_per_node(false, rsize, iters * 4);
        let churn_ratio = churn_bs / churn_mj;
        let pin_ratio = pin_bs / pin_mj;
        println!(
            "sweep rsize={rsize:>3}: churn merge_join {churn_mj:>6.2} vs \
             binary_search {churn_bs:>6.2} ns/node ({churn_ratio:.2}x) | \
             pinned {pin_mj:>6.2} vs {pin_bs:>6.2} ns/node ({pin_ratio:.2}x)"
        );
        if i > 0 {
            sweeps.push(',');
        }
        write!(
            sweeps,
            "\n    {{\"reserved\": {rsize}, \
             \"churn_merge_join_ns_per_node\": {churn_mj:.2}, \
             \"churn_binary_search_ns_per_node\": {churn_bs:.2}, \
             \"churn_speedup\": {churn_ratio:.3}, \
             \"pinned_merge_join_ns_per_node\": {pin_mj:.2}, \
             \"pinned_binary_search_ns_per_node\": {pin_bs:.2}, \
             \"pinned_speedup\": {pin_ratio:.3}}}"
        )
        .unwrap();
    }

    let mut binned = String::new();
    for (i, &rsize) in [64usize, 512].iter().enumerate() {
        let (ns_1, share_1) = binned_churn_ns_per_node(1, rsize, iters);
        let (ns_8, share_8) = binned_churn_ns_per_node(8, rsize, iters);
        let ratio = ns_1 / ns_8;
        println!(
            "binned_fill rsize={rsize:>3}: bins=1 {ns_1:>6.2} ns/node \
             (monotone {share_1:.2}) vs bins=8 {ns_8:>6.2} ns/node \
             (monotone {share_8:.2}) — {ratio:.2}x"
        );
        if i > 0 {
            binned.push(',');
        }
        write!(
            binned,
            "\n    {{\"reserved\": {rsize}, \
             \"bins1_ns_per_node\": {ns_1:.2}, \
             \"bins1_monotone_share\": {share_1:.3}, \
             \"bins8_ns_per_node\": {ns_8:.2}, \
             \"bins8_monotone_share\": {share_8:.3}, \
             \"binned_speedup\": {ratio:.3}}}"
        )
        .unwrap();
    }

    let wake_futex = wait_wake_ns(true, iters);
    let wake_yield = wait_wake_ns(false, iters);
    println!("wait_wake: futex {wake_futex:.0} ns, yield {wake_yield:.0} ns");

    // PR 8: full-pass publish cost per mode at growing peer counts. The
    // acceptance bar is membarrier ≥ 2× cheaper than the signal fan-out at
    // 16+ registered threads; the gap widens with peers because the signal
    // path pays one tgkill + handler publish + wait per peer while
    // membarrier pays one syscall regardless.
    let membarrier_available = pop_runtime::membarrier::is_available();
    let mut publish_rows = String::new();
    let pass_iters = (iters / 4).max(8);
    for (i, &peers) in [4usize, 16, 64].iter().enumerate() {
        let signal_ns = publish_pass_ns(PublishMode::Signal, peers, pass_iters);
        let futex_ns = publish_pass_ns(PublishMode::Futex, peers, pass_iters);
        let mb_ns = if membarrier_available {
            publish_pass_ns(PublishMode::Membarrier, peers, pass_iters)
        } else {
            // Fallback host: the membarrier config resolves to fan-out, so
            // report that cost and a 1.0x ratio rather than fake a win.
            futex_ns
        };
        let speedup = signal_ns / mb_ns;
        println!(
            "publish_mode peers={peers:>2}: signal {signal_ns:>9.0} ns/pass | \
             futex {futex_ns:>9.0} ns/pass | membarrier {mb_ns:>9.0} ns/pass \
             ({speedup:.2}x vs signal)"
        );
        if i > 0 {
            publish_rows.push(',');
        }
        write!(
            publish_rows,
            "\n    {{\"peers\": {peers}, \
             \"signal_ns_per_pass\": {signal_ns:.0}, \
             \"futex_ns_per_pass\": {futex_ns:.0}, \
             \"membarrier_ns_per_pass\": {mb_ns:.0}, \
             \"membarrier_speedup_vs_signal\": {speedup:.3}}}"
        )
        .unwrap();
    }

    // PR 5: idle-domain pass cost with the epoch-cadence decay on vs off.
    // The acceptance bar is a ≥ 2× reduction; the thinned passes usually
    // land far past it.
    let triggers = iters.max(48);
    let (idle_static, _) = idle_pass_ns(false, triggers);
    let (idle_adaptive, decay_steps) = idle_pass_ns(true, triggers);
    let idle_speedup = idle_static / idle_adaptive;
    println!(
        "idle_pass: static {idle_static:.0} ns/trigger vs adaptive \
         {idle_adaptive:.0} ns/trigger ({idle_speedup:.2}x, \
         {decay_steps} decay steps)"
    );

    // PR 5: adaptive bin convergence. Single stream — adaptive must match
    // the 1-bin static setting; interleaved-arena churn — adaptive must
    // match the 8-bin static setting. Warmup rounds let the auto-sizer
    // converge before the measured rounds.
    const SINGLE_NODES: usize = 4096;
    const INTER_NODES: usize = SWEEP_NODES * 8;
    let rounds = (iters / 4).max(8);
    let single = |b: &mut SweepBench| b.fill_sorted(SINGLE_NODES);
    let inter = |b: &mut SweepBench| b.fill_interleaved(INTER_NODES, 4);
    let (single_s1, single_s8, single_ad, single_bins) = adaptive_bins_ns(single, 64, 8, rounds);
    let (inter_s1, inter_s8, inter_ad, inter_bins) = adaptive_bins_ns(inter, 64, 8, rounds);
    println!(
        "adaptive_bins single-stream: static1 {single_s1:.2} | static8 \
         {single_s8:.2} | adaptive {single_ad:.2} ns/node (→ {single_bins} bins)"
    );
    println!(
        "adaptive_bins interleaved:   static1 {inter_s1:.2} | static8 \
         {inter_s8:.2} | adaptive {inter_ad:.2} ns/node (→ {inter_bins} bins)"
    );

    // PR 5: era-monotone seal share and the first-sweep era filter. The
    // interleaved workload's birth eras zigzag in an unbinned fill block
    // but stay monotone per arena bin, so the binned side merge-joins on
    // the first sweep (no sort deferral) and the share says why.
    let era_share = |bins: usize| {
        let mut bench = SweepBench::with_bins(bins);
        let mut era_ns = 0u128;
        let mut nodes = 0usize;
        for _ in 0..rounds {
            let n = bench.fill_interleaved(INTER_NODES, 4).len();
            let reserved: Vec<u64> = (0..64u64).map(|i| i * (n as u64 / 64)).collect();
            let t0 = Instant::now();
            bench.sweep_era(&reserved);
            era_ns += t0.elapsed().as_nanos();
            nodes += n;
            bench.drain();
        }
        let (mono, sealed) = bench.era_monotone_share();
        (
            era_ns as f64 / nodes as f64,
            mono as f64 / sealed.max(1) as f64,
        )
    };
    let (era_ns_1, era_share_1) = era_share(1);
    let (era_ns_8, era_share_8) = era_share(8);
    println!(
        "era_monotone: bins=1 {era_ns_1:.2} ns/node (share {era_share_1:.2}) \
         vs bins=8 {era_ns_8:.2} ns/node (share {era_share_8:.2})"
    );

    // Bounded-garbage PR: the escalation ladder engaged by a stalled
    // reader under tight watermarks, and the one-flush recovery cost.
    let (p_soft, p_hard, p_emerg, p_quar, p_trim, p_recovery_ns) = pressure_ladder_smoke();
    println!(
        "pressure_ladder: trips soft {p_soft} / hard {p_hard} / emergency \
         {p_emerg}, {p_quar} blocks quarantined, {p_trim} pool blocks \
         trimmed, recovery {p_recovery_ns:.0} ns"
    );
    // Enabled-untripped parity: under the paper-default watermarks the
    // gauge must stay silent through quiescent churn, so its presence
    // costs the measurements above nothing.
    let untripped = {
        let smr = Ebr::new(SmrConfig::for_tests(2));
        let reg0 = smr.register(0);
        for i in 0..2_048u64 {
            smr.note_alloc(0, core::mem::size_of::<Node>());
            let p = Box::into_raw(Box::new(Node {
                hdr: Header::new(0, core::mem::size_of::<Node>()),
                v: i,
            }));
            // SAFETY: never shared; retired exactly once.
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        drop(reg0);
        s.pressure_soft_trips == 0
            && s.pressure_hard_trips == 0
            && s.pressure_emergency_trips == 0
            && s.blocks_quarantined == 0
    };
    assert!(
        untripped,
        "default watermarks must not trip under quiescent churn"
    );
    println!("pressure_untripped_default: {untripped}");

    // PR 10: whole-slab settlement vs the merge-join sweep, plus the
    // OS-release gauge after the drain. Acceptance bar: the settle path
    // ≥ 2× faster, and `slab_released_bytes > 0`.
    let (slab_ns, slab_mj_ns, slab_whole, slab_released) = slab_settlement(iters);
    let slab_speedup = slab_mj_ns / slab_ns;
    println!(
        "slab_settlement: whole-slab {slab_ns:.2} ns/node vs merge-join \
         {slab_mj_ns:.2} ns/node ({slab_speedup:.2}x), {slab_whole} blocks \
         settled whole, {slab_released} bytes released"
    );

    // PR 9: the new matrix cells (skip list + NM tree) through the
    // evaluation-grid driver path.
    let matrix_rows = matrix_smoke();
    let mut matrix_json = String::new();
    for (i, (id, mops, retire)) in matrix_rows.iter().enumerate() {
        println!("matrix_smoke {id}: {mops:.3} Mops/s, max_retire {retire}");
        if i > 0 {
            matrix_json.push(',');
        }
        write!(
            matrix_json,
            "\n    {{\"cell\": \"{id}\", \"throughput_mops\": {mops:.4}, \
             \"max_retire_len\": {retire}}}"
        )
        .unwrap();
    }

    let json = format!(
        "{{\n  \"bench\": \"pr10_slab_vbr\",\n  \"iters\": {iters},\n  \
         \"sweep_filter\": [{sweeps}\n  ],\n  \
         \"binned_fill\": [{binned}\n  ],\n  \
         \"sequential_fill_monotone_share\": {seq_share:.3},\n  \
         \"wait_wake_ns\": {{\"futex\": {wake_futex:.0}, \"yield\": {wake_yield:.0}}},\n  \
         \"membarrier_available\": {membarrier_available},\n  \
         \"publish_mode\": [{publish_rows}\n  ],\n  \
         \"idle_pass\": {{\"static_ns_per_trigger\": {idle_static:.0}, \
         \"adaptive_ns_per_trigger\": {idle_adaptive:.0}, \
         \"decay_speedup\": {idle_speedup:.3}, \
         \"decay_steps\": {decay_steps}}},\n  \
         \"adaptive_bins\": {{\
         \"single_stream\": {{\"static1_ns\": {single_s1:.2}, \"static8_ns\": {single_s8:.2}, \
         \"adaptive_ns\": {single_ad:.2}, \"adaptive_bins\": {single_bins}}}, \
         \"interleaved\": {{\"static1_ns\": {inter_s1:.2}, \"static8_ns\": {inter_s8:.2}, \
         \"adaptive_ns\": {inter_ad:.2}, \"adaptive_bins\": {inter_bins}}}}},\n  \
         \"era_monotone\": {{\"bins1_ns\": {era_ns_1:.2}, \"bins1_share\": {era_share_1:.3}, \
         \"bins8_ns\": {era_ns_8:.2}, \"bins8_share\": {era_share_8:.3}}},\n  \
         \"pressure\": {{\"soft_trips\": {p_soft}, \"hard_trips\": {p_hard}, \
         \"emergency_trips\": {p_emerg}, \"blocks_quarantined\": {p_quar}, \
         \"pool_blocks_trimmed\": {p_trim}, \"recovery_ns\": {p_recovery_ns:.0}, \
         \"untripped_default\": {untripped}}},\n  \
         \"slab_vbr\": {{\"slab_settle_ns_per_node\": {slab_ns:.2}, \
         \"merge_join_ns_per_node\": {slab_mj_ns:.2}, \
         \"settle_speedup\": {slab_speedup:.3}, \
         \"slab_frees_whole\": {slab_whole}, \
         \"slab_released_bytes\": {slab_released}}},\n  \
         \"matrix_smoke\": [{matrix_json}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
