//! Traversal-length scaling: how the per-read cost compounds with chain
//! length (the paper's motivation: "in linked data structures the fence
//! cost is paid for every node visited").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use pop_core::{Ebr, HazardPtr, HazardPtrPop, NoReclaim, Smr, SmrConfig};
use pop_ds::hml::HmList;
use pop_ds::ConcurrentMap;

fn traversal_scaling<S: Smr>(c: &mut Criterion) {
    for len in [16u64, 128, 1024] {
        let smr = S::new(SmrConfig::for_threads(1));
        let list = HmList::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for k in 0..len {
            list.insert(0, k, k);
        }
        let mut g = c.benchmark_group(format!("traverse_{}", S::NAME));
        g.throughput(Throughput::Elements(len));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            // Probe the last key: a full-length traversal.
            b.iter(|| std::hint::black_box(list.contains(0, len - 1)))
        });
        g.finish();
        drop(reg);
    }
}

fn traversal(c: &mut Criterion) {
    traversal_scaling::<NoReclaim>(c);
    traversal_scaling::<Ebr>(c);
    traversal_scaling::<HazardPtr>(c);
    traversal_scaling::<HazardPtrPop>(c);
}

criterion_group!(benches, traversal);
criterion_main!(benches);
