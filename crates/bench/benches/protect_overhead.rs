//! Per-read protection cost — the paper's §2.1.2 perf claim.
//!
//! The paper measured (with perf) that searches over a 100-node
//! Harris-Michael list spend ≈50% of cycles reading hazard pointers under
//! classic HP, versus ≈15% leaky. Here we measure the same effect as
//! wall-clock per-lookup cost across schemes on a 100-node list: expect
//! HP ≫ {HPAsym, HazardPtrPOP, EpochPOP} ≈ NR, with HE in between.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use pop_core::{
    Ebr, EpochPop, HazardEra, HazardEraPop, HazardPtr, HazardPtrAsym, HazardPtrPop, NbrPlus,
    NoReclaim, Smr, SmrConfig,
};
use pop_ds::hml::HmList;
use pop_ds::ConcurrentMap;

const LIST_KEYS: u64 = 100;

fn bench_scheme<S: Smr>(c: &mut Criterion) {
    let smr = S::new(SmrConfig::for_threads(1));
    let list = HmList::new(Arc::clone(&smr));
    let reg = smr.register(0);
    for k in 0..LIST_KEYS {
        list.insert(0, k, k);
    }
    let mut x = 0x12345678u64;
    c.bench_with_input(
        BenchmarkId::new("contains_100_node_list", S::NAME),
        &(),
        |b, _| {
            b.iter(|| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                std::hint::black_box(list.contains(0, x % LIST_KEYS))
            })
        },
    );
    drop(reg);
}

fn protect_overhead(c: &mut Criterion) {
    bench_scheme::<NoReclaim>(c);
    bench_scheme::<Ebr>(c);
    bench_scheme::<HazardPtr>(c);
    bench_scheme::<HazardPtrAsym>(c);
    bench_scheme::<HazardEra>(c);
    bench_scheme::<HazardPtrPop>(c);
    bench_scheme::<HazardEraPop>(c);
    bench_scheme::<EpochPop>(c);
    bench_scheme::<NbrPlus>(c);
}

criterion_group!(benches, protect_overhead);
criterion_main!(benches);
