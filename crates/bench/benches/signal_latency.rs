//! Ping round-trip latency — the paper's §4.1.2 timeliness discussion.
//!
//! Measures a full publish-on-ping reclamation handshake
//! (`collectPublishedCounters → pingAllToPublish → waitForAllPublished`)
//! as a function of the number of registered peer threads, including the
//! oversubscribed case (peers > cores), which the paper calls out as
//! POP's worst case — plus a futex-park vs yield-loop comparison of the
//! post-spin wait itself on an oversubscribed host, where parking stops
//! burning a scheduler quantum per retry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pop_core::{HazardPtrPop, Smr, SmrConfig};

fn ping_roundtrip(c: &mut Criterion) {
    let ncpu = pop_runtime::affinity::num_cpus();
    for peers in [0usize, 1, ncpu, ncpu * 2] {
        let smr = HazardPtrPop::new(SmrConfig::for_threads(peers + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        let (tx, rx) = std::sync::mpsc::channel();
        for tid in 1..=peers {
            let smr = Arc::clone(&smr);
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            workers.push(std::thread::spawn(move || {
                let reg = smr.register(tid);
                tx.send(()).unwrap();
                // Busy peers: the handler interrupts this spin.
                while !stop.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
                drop(reg);
            }));
        }
        for _ in 0..peers {
            rx.recv().unwrap();
        }
        let reg = smr.register(0);
        c.bench_with_input(
            BenchmarkId::new("ping_all_and_wait", peers),
            &peers,
            |b, _| {
                // flush() on an empty retire list runs the full ping
                // handshake and an (empty) scan.
                b.iter(|| smr.flush(0));
            },
        );
        drop(reg);
        stop.store(true, Ordering::Release);
        for w in workers {
            w.join().unwrap();
        }
    }
}

/// Wait-mode comparison: identical oversubscribed handshake (2 × cores
/// busy peers), with the post-spin wait either parked on the publish-word
/// futex or yielding. A tiny spin budget forces the wait path to decide
/// the latency.
fn wait_mode(c: &mut Criterion) {
    let ncpu = pop_runtime::affinity::num_cpus();
    let peers = ncpu * 2;
    for (label, futex) in [("futex", true), ("yield", false)] {
        let smr = HazardPtrPop::new(
            SmrConfig::for_threads(peers + 1)
                .with_publish_spin(8)
                .with_futex_wait(futex),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        let (tx, rx) = std::sync::mpsc::channel();
        for tid in 1..=peers {
            let smr = Arc::clone(&smr);
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            workers.push(std::thread::spawn(move || {
                let reg = smr.register(tid);
                tx.send(()).unwrap();
                // In-op peers: never filtered, so every pass waits on all
                // of their handlers.
                smr.begin_op(tid);
                while !stop.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
                smr.end_op(tid);
                drop(reg);
            }));
        }
        for _ in 0..peers {
            rx.recv().unwrap();
        }
        let reg = smr.register(0);
        c.bench_with_input(BenchmarkId::new("wait_mode", label), &peers, |b, _| {
            b.iter(|| smr.flush(0));
        });
        drop(reg);
        stop.store(true, Ordering::Release);
        for w in workers {
            w.join().unwrap();
        }
    }
}

criterion_group!(benches, ping_roundtrip, wait_mode);
criterion_main!(benches);
