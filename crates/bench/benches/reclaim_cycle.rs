//! Full retire→reclaim cycle cost per scheme: the amortized price of a
//! reclamation event (scan/ping/free), measured by driving insert+delete
//! pairs through a list with a small retire threshold — plus an isolated
//! reclamation-**pass** cost measurement at 1, 4 and 8 registered threads
//! that makes the allocation-free + quiescent-ping-filter work visible in
//! the bench trajectory (idle peers are exactly the threads the filter
//! elides; wider domains mean wider reservation scans).
//!
//! Two sweeps added with the batched retirement pipeline:
//!
//! * `retire_throughput_*` — the retire fast path alone, batched
//!   (`retire_batch = RETIRE_BATCH_CAP`) vs unbatched (`retire_batch = 1`),
//!   isolating the amortized stats bump + threshold test.
//! * `epoch_advance_*` — `begin_op`/`end_op` cost under 1/4/8 threads all
//!   eligible to advance the epoch every operation (`epoch_freq = 1`): the
//!   per-thread clock tick replaces what used to be a contended shared
//!   `fetch_add`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use pop_core::testing::SweepBench;
use pop_core::{
    retire_node, Ebr, EpochPop, HasHeader, HazardEra, HazardEraPop, HazardPtr, HazardPtrPop,
    Header, Hyaline, Ibr, Smr, SmrConfig, RETIRE_BATCH_CAP,
};
use pop_ds::hml::HmList;
use pop_ds::ConcurrentMap;

#[repr(C)]
struct BenchNode {
    hdr: Header,
    v: u64,
}
unsafe impl HasHeader for BenchNode {}

fn alloc_node<S: Smr>(smr: &S, tid: usize, v: u64) -> *mut BenchNode {
    smr.note_alloc(tid, core::mem::size_of::<BenchNode>());
    Box::into_raw(Box::new(BenchNode {
        hdr: Header::new(smr.current_era(), core::mem::size_of::<BenchNode>()),
        v,
    }))
}

/// Cost of one reclamation pass (retire a small batch, then `flush`) with
/// `threads - 1` registered-but-idle peers. Idle peers stress exactly what
/// this iteration of the codebase optimized: their stat shards stay cold,
/// ping filtering skips signalling them, and the pass reuses scratch
/// buffers instead of reallocating.
fn reclaim_pass_cost<S: Smr>(c: &mut Criterion, threads: usize) {
    const BATCH: u64 = 64;
    // Threshold far above BATCH: the pass runs only inside `flush`.
    let smr = S::new(SmrConfig::for_threads(threads).with_reclaim_freq(1 << 20));
    let reg = smr.register(0);
    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(Barrier::new(threads));
    let mut peers = Vec::new();
    for t in 1..threads {
        let smr = Arc::clone(&smr);
        let stop = Arc::clone(&stop);
        let ready = Arc::clone(&ready);
        peers.push(std::thread::spawn(move || {
            let peer_reg = smr.register(t);
            ready.wait();
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            drop(peer_reg);
        }));
    }
    if threads > 1 {
        ready.wait();
    }
    let mut g = c.benchmark_group(format!("reclaim_pass_{}", S::NAME));
    g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
        b.iter(|| {
            for i in 0..BATCH {
                let p = alloc_node(&*smr, 0, i);
                // SAFETY: never shared; retired exactly once.
                unsafe { retire_node(&*smr, 0, p) };
            }
            smr.flush(0);
        })
    });
    g.finish();
    stop.store(true, Ordering::Release);
    for p in peers {
        p.join().unwrap();
    }
    drop(reg);
}

fn pass_cost_sweep(c: &mut Criterion) {
    for &threads in &[1usize, 4, 8] {
        reclaim_pass_cost::<Ebr>(c, threads);
        reclaim_pass_cost::<HazardPtr>(c, threads);
        reclaim_pass_cost::<HazardEra>(c, threads);
        reclaim_pass_cost::<HazardPtrPop>(c, threads);
        reclaim_pass_cost::<HazardEraPop>(c, threads);
        reclaim_pass_cost::<EpochPop>(c, threads);
    }
}

fn reclaim_cycle<S: Smr>(c: &mut Criterion) {
    let smr = S::new(SmrConfig::for_threads(1).with_reclaim_freq(256));
    let list = HmList::new(Arc::clone(&smr));
    let reg = smr.register(0);
    for k in 0..512u64 {
        list.insert(0, k * 2, k);
    }
    let mut i = 0u64;
    c.bench_with_input(
        BenchmarkId::new("insert_delete_pair", S::NAME),
        &(),
        |b, _| {
            b.iter(|| {
                let k = (i % 512) * 2 + 1;
                list.insert(0, k, i);
                list.remove(0, k);
                i += 1;
            })
        },
    );
    drop(reg);
}

/// Retire fast-path throughput: retire 256 pre-counted nodes per
/// iteration (the quiescent single thread lets the threshold pass drain
/// them), comparing the sealed-batch pipeline against `retire_batch = 1`.
fn retire_throughput<S: Smr>(c: &mut Criterion) {
    const NODES: u64 = 256;
    let mut g = c.benchmark_group(format!("retire_throughput_{}", S::NAME));
    for (label, batch) in [("batched", RETIRE_BATCH_CAP), ("batch1", 1)] {
        let smr = S::new(
            SmrConfig::for_threads(1)
                .with_reclaim_freq(NODES as usize)
                .with_retire_batch(batch),
        );
        let reg = smr.register(0);
        g.bench_with_input(BenchmarkId::from_parameter(label), &batch, |b, _| {
            b.iter(|| {
                for i in 0..NODES {
                    let p = alloc_node(&*smr, 0, i);
                    // SAFETY: never shared; retired exactly once.
                    unsafe { retire_node(&*smr, 0, p) };
                }
            })
        });
        smr.flush(0);
        drop(reg);
    }
    g.finish();
}

fn retire_throughput_sweep(c: &mut Criterion) {
    retire_throughput::<Ebr>(c);
    retire_throughput::<HazardPtr>(c);
    retire_throughput::<HazardPtrPop>(c);
    retire_throughput::<Hyaline>(c);
}

/// Epoch-advance contention: `threads - 1` peers hammer `begin_op`/`end_op`
/// with `epoch_freq = 1` (every op ticks a clock) while the measured thread
/// does the same. Before the per-thread clocks this was a shared
/// `fetch_add` from every thread on every op.
fn epoch_advance_contention<S: Smr>(c: &mut Criterion, threads: usize) {
    let smr = S::new(SmrConfig::for_threads(threads).with_epoch_freq(1));
    let reg = smr.register(0);
    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(Barrier::new(threads));
    let mut peers = Vec::new();
    for t in 1..threads {
        let smr = Arc::clone(&smr);
        let stop = Arc::clone(&stop);
        let ready = Arc::clone(&ready);
        peers.push(std::thread::spawn(move || {
            let peer_reg = smr.register(t);
            ready.wait();
            while !stop.load(Ordering::Acquire) {
                smr.begin_op(t);
                smr.end_op(t);
            }
            drop(peer_reg);
        }));
    }
    if threads > 1 {
        ready.wait();
    }
    let mut g = c.benchmark_group(format!("epoch_advance_{}", S::NAME));
    g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
        b.iter(|| {
            smr.begin_op(0);
            smr.end_op(0);
        })
    });
    g.finish();
    stop.store(true, Ordering::Release);
    for p in peers {
        p.join().unwrap();
    }
    drop(reg);
}

fn epoch_advance_sweep(c: &mut Criterion) {
    for &threads in &[1usize, 4, 8] {
        epoch_advance_contention::<Ebr>(c, threads);
        epoch_advance_contention::<Ibr>(c, threads);
        epoch_advance_contention::<EpochPop>(c, threads);
    }
}

/// Reservation-filter cost per sweep: merge-join (range-tested block
/// summaries, then sorted-cursor joins against the reserved set) vs the
/// historical per-node binary search, at reserved-set sizes 4 / 64 / 512,
/// in two regimes:
///
/// * `sweep_filter_churn_*` — fresh address-random retire lists, every
///   block swept once then drained (the filterers' worst case: nothing
///   amortizes; the sort-deferral heuristic keeps this at parity).
///   Caveat: each iteration's fill + drain overhead is timed alongside
///   the sweep (identical for both strategies), so the ratio here
///   *understates* the filter-only delta — `bench_smoke`'s
///   `churn_ns_per_node` times the sweep call alone and is the number
///   CI tracks.
/// * `sweep_filter_pinned_*` — a fully pinned list re-swept every
///   iteration (the stalled-reader steady state): untouched blocks keep
///   their sort cache, so the merge-join pays its sort once while the
///   baseline re-runs every binary search every pass.
fn sweep_filter_sweep(c: &mut Criterion) {
    const NODES: usize = 1024;
    for &rsize in &[4usize, 64, 512] {
        let mut g = c.benchmark_group(format!("sweep_filter_churn_{rsize}"));
        for merge_join in [true, false] {
            let label = if merge_join {
                "merge_join"
            } else {
                "binary_search"
            };
            let mut bench = SweepBench::new();
            g.bench_with_input(BenchmarkId::from_parameter(label), &rsize, |b, _| {
                b.iter(|| {
                    let ptrs = bench.fill(NODES);
                    let mut reserved: Vec<u64> = ptrs
                        .iter()
                        .copied()
                        .step_by((NODES / rsize).max(1))
                        .take(rsize)
                        .collect();
                    reserved.sort_unstable();
                    let freed = if merge_join {
                        bench.sweep_merge_join(&reserved)
                    } else {
                        bench.sweep_binary_search(&reserved)
                    };
                    assert_eq!(freed, NODES - reserved.len());
                    bench.drain();
                })
            });
        }
        g.finish();
        let mut g = c.benchmark_group(format!("sweep_filter_pinned_{rsize}"));
        for merge_join in [true, false] {
            let label = if merge_join {
                "merge_join"
            } else {
                "binary_search"
            };
            let mut bench = SweepBench::new();
            let mut reserved = bench.fill(rsize);
            reserved.sort_unstable();
            g.bench_with_input(BenchmarkId::from_parameter(label), &rsize, |b, _| {
                b.iter(|| {
                    let freed = if merge_join {
                        bench.sweep_merge_join(&reserved)
                    } else {
                        bench.sweep_binary_search(&reserved)
                    };
                    assert_eq!(freed, 0, "everything pinned");
                })
            });
            bench.drain();
        }
        g.finish();
    }
}

/// Arena-binned fill vs the single fill block over the interleaved-arena
/// churn workload (PR 4): four address-ascending allocation bursts retired
/// round-robin. Unbinned fill blocks interleave the four address streams
/// (non-monotone — every decided block pays a real sort); binned fills
/// separate them so sealed blocks are born monotone and the merge-join
/// sweep's sort detection is free. Each burst (`NODES / STREAMS` nodes at
/// ~48 B) must span more than one `ARENA_SHIFT` (64 KiB) region — smaller
/// bursts would share one arena and no routing could separate them.
fn sweep_filter_binned_sweep(c: &mut Criterion) {
    const NODES: usize = 8192;
    const STREAMS: usize = 4;
    for &rsize in &[64usize, 512] {
        let mut g = c.benchmark_group(format!("sweep_filter_binned_churn_{rsize}"));
        for bins in [1usize, 8] {
            let mut bench = SweepBench::with_bins(bins);
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("bins_{bins}")),
                &rsize,
                |b, _| {
                    b.iter(|| {
                        let ptrs = bench.fill_interleaved(NODES, STREAMS);
                        let mut reserved: Vec<u64> = ptrs
                            .iter()
                            .copied()
                            .step_by((NODES / rsize).max(1))
                            .take(rsize)
                            .collect();
                        reserved.sort_unstable();
                        let freed = bench.sweep_merge_join(&reserved);
                        assert_eq!(freed, ptrs.len() - reserved.len());
                        bench.drain();
                    })
                },
            );
        }
        g.finish();
    }
}

fn benches(c: &mut Criterion) {
    reclaim_cycle::<Ebr>(c);
    reclaim_cycle::<Ibr>(c);
    reclaim_cycle::<HazardPtr>(c);
    reclaim_cycle::<HazardEra>(c);
    reclaim_cycle::<HazardPtrPop>(c);
    reclaim_cycle::<HazardEraPop>(c);
    reclaim_cycle::<EpochPop>(c);
    reclaim_cycle::<Hyaline>(c);
}

criterion_group!(
    group,
    benches,
    pass_cost_sweep,
    retire_throughput_sweep,
    epoch_advance_sweep,
    sweep_filter_sweep,
    sweep_filter_binned_sweep
);
criterion_main!(group);
