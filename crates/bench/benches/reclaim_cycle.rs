//! Full retire→reclaim cycle cost per scheme: the amortized price of a
//! reclamation event (scan/ping/free), measured by driving insert+delete
//! pairs through a list with a small retire threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use pop_core::{
    Ebr, EpochPop, HazardEra, HazardEraPop, HazardPtr, HazardPtrPop, Hyaline, Ibr, Smr, SmrConfig,
};
use pop_ds::hml::HmList;
use pop_ds::ConcurrentMap;

fn reclaim_cycle<S: Smr>(c: &mut Criterion) {
    let smr = S::new(SmrConfig::for_threads(1).with_reclaim_freq(256));
    let list = HmList::new(Arc::clone(&smr));
    let reg = smr.register(0);
    for k in 0..512u64 {
        list.insert(0, k * 2, k);
    }
    let mut i = 0u64;
    c.bench_with_input(
        BenchmarkId::new("insert_delete_pair", S::NAME),
        &(),
        |b, _| {
            b.iter(|| {
                let k = (i % 512) * 2 + 1;
                list.insert(0, k, i);
                list.remove(0, k);
                i += 1;
            })
        },
    );
    drop(reg);
}

fn benches(c: &mut Criterion) {
    reclaim_cycle::<Ebr>(c);
    reclaim_cycle::<Ibr>(c);
    reclaim_cycle::<HazardPtr>(c);
    reclaim_cycle::<HazardEra>(c);
    reclaim_cycle::<HazardPtrPop>(c);
    reclaim_cycle::<HazardEraPop>(c);
    reclaim_cycle::<EpochPop>(c);
    reclaim_cycle::<Hyaline>(c);
}

criterion_group!(group, benches);
criterion_main!(group);
