//! Minimal vendored `criterion`-compatible harness for offline builds.
//!
//! Implements the API subset this workspace's benches use (`Criterion`,
//! `BenchmarkId`, `benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros) with a
//! simple warmup + timed-batch protocol. Reported numbers are median-free
//! mean ns/iter — adequate for the relative before/after comparisons this
//! repo's bench trajectory tracks, not for statistical rigor.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement throughput annotation (display only).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a run.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    total: Duration,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly: brief warmup, then timed batches until the
    /// measurement budget elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: let caches/branch predictors settle.
        let warm_until = Instant::now() + self.measure_for / 5;
        while Instant::now() < warm_until {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure_for {
            // Batch 16 calls per clock read to keep timer overhead small.
            for _ in 0..16 {
                std::hint::black_box(f());
            }
            iters += 16;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// Handle for a group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmarks `f` with `input`, labelled `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let tp = self.throughput;
        self.criterion.run_one(&label, tp, input, f);
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark runner.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label.clone();
        self.run_one(&label, None, input, f);
    }

    /// Benchmarks a nullary routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, None, &(), |b, _| f(b));
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<I, F>(&mut self, label: &str, throughput: Option<Throughput>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            measure_for: self.measure_for,
        };
        f(&mut b, input);
        if b.iters == 0 {
            println!("bench {label}: no iterations recorded");
            return;
        }
        let ns = b.total.as_nanos() as f64 / b.iters as f64;
        match throughput {
            Some(Throughput::Elements(n)) => {
                let per_elem = ns / n as f64;
                println!("bench {label}: {ns:.1} ns/iter ({per_elem:.2} ns/elem)");
            }
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / ns; // bytes/ns == GiB-ish/s
                println!("bench {label}: {ns:.1} ns/iter ({gib:.2} B/ns)");
            }
            None => println!("bench {label}: {ns:.1} ns/iter"),
        }
    }
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function running each listed routine.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(10),
        };
        let mut ran = 0u64;
        c.bench_with_input(BenchmarkId::new("noop", 1), &(), |b, _| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(8));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        g.finish();
    }
}
