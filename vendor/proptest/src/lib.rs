//! Minimal vendored `proptest`-compatible harness for offline builds.
//!
//! Supports the subset this workspace's property tests use: `proptest!`
//! with an optional `#![proptest_config(...)]` header, `Strategy` with
//! `prop_map`, `any::<T>()`, `Just`, `prop_oneof!`, ranges as strategies,
//! tuple strategies, `prop::collection::vec`, and the `prop_assert*`
//! macros. Cases are generated from a fixed per-test seed (derived from the
//! test name) so failures reproduce deterministically; there is no
//! shrinking — the failing case's inputs are printed instead.

/// Deterministic case-generation RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: core::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: core::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: core::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: core::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a single constant.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Uniform choice among boxed alternatives — backing for `prop_oneof!`.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: core::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "empty union strategy");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized + core::fmt::Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained strategy for `T` (proptest's `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// `prop::collection` namespace.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prelude` glob import target.
pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy};
    /// The `prop` namespace alias used as `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategy alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!{ @cfg ($cfg) $($rest)* }
    };
    ( @cfg ($cfg:expr)
      $( $(#[doc = $doc:expr])* #[test] fn $name:ident(
            $($arg:pat_param in $strat:expr),+ $(,)?
         ) $body:block )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body)
                    );
                    if let Err(e) = result {
                        eprintln!("proptest {}: case {case}/{} failed", stringify!($name), cfg.cases);
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum E {
        A(u64),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        /// Doc comments on cases are preserved.
        #[test]
        fn oneof_and_map_work(v in prop::collection::vec(
            prop_oneof![ (0u64..9).prop_map(E::A), Just(E::B) ], 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for e in v {
                match e {
                    E::A(x) => prop_assert!(x < 9),
                    E::B => {}
                }
            }
        }

        #[test]
        fn tuples_and_any(pair in (0u32..5, any::<bool>())) {
            prop_assert!(pair.0 < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
