//! Minimal vendored `libc` surface for offline builds.
//!
//! The build container has no network access to crates.io, so this crate
//! declares exactly the glibc symbols, constants and struct layouts this
//! workspace uses — nothing more. Layouts follow glibc on Linux (x86_64 and
//! aarch64 share them for everything declared here).

#![allow(non_camel_case_types, non_upper_case_globals, non_snake_case)]

pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type pid_t = i32;
pub type pthread_t = c_ulong;
pub type off_t = i64;

/// Opaque C `void` (one-variant enum layout, matching the real crate).
#[repr(u8)]
pub enum c_void {
    #[doc(hidden)]
    __variant1,
    #[doc(hidden)]
    __variant2,
}

/// glibc `sigset_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [c_ulong; 16],
}

/// glibc `struct sigaction` (Linux layout: handler, mask, flags, restorer).
#[repr(C)]
pub struct sigaction {
    pub sa_sigaction: usize,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    pub sa_restorer: Option<unsafe extern "C" fn()>,
}

/// glibc `cpu_set_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [c_ulong; 16],
}

/// Kernel `struct timespec` (LP64 layout: two signed 64-bit fields).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct timespec {
    pub tv_sec: c_long,
    pub tv_nsec: c_long,
}

pub const SIGUSR1: c_int = 10;
pub const SA_RESTART: c_int = 0x10000000;
pub const _SC_NPROCESSORS_ONLN: c_int = 84;

pub const ESRCH: c_int = 3;
pub const EINTR: c_int = 4;
pub const EAGAIN: c_int = 11;
pub const ETIMEDOUT: c_int = 110;

#[cfg(target_arch = "x86_64")]
pub const SYS_membarrier: c_long = 324;
#[cfg(target_arch = "aarch64")]
pub const SYS_membarrier: c_long = 283;
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const SYS_membarrier: c_long = -1;

#[cfg(target_arch = "x86_64")]
pub const SYS_futex: c_long = 202;
#[cfg(target_arch = "aarch64")]
pub const SYS_futex: c_long = 98;
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const SYS_futex: c_long = -1;

#[cfg(target_arch = "x86_64")]
pub const SYS_tgkill: c_long = 234;
#[cfg(target_arch = "aarch64")]
pub const SYS_tgkill: c_long = 131;
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const SYS_tgkill: c_long = -1;

#[cfg(target_arch = "x86_64")]
pub const SYS_gettid: c_long = 186;
#[cfg(target_arch = "aarch64")]
pub const SYS_gettid: c_long = 178;
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const SYS_gettid: c_long = -1;

pub const FUTEX_WAIT: c_int = 0;
pub const FUTEX_WAKE: c_int = 1;
pub const FUTEX_PRIVATE_FLAG: c_int = 128;

pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_ANONYMOUS: c_int = 0x20;
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
pub const MADV_DONTNEED: c_int = 4;

/// Clears every CPU from the set (glibc implements this as a macro).
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; 16];
}

/// Adds `cpu` to the set (glibc implements this as a macro).
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    let word = cpu / (8 * core::mem::size_of::<c_ulong>());
    let bit = cpu % (8 * core::mem::size_of::<c_ulong>());
    if word < set.bits.len() {
        set.bits[word] |= 1 << bit;
    }
}

extern "C" {
    pub fn sysconf(name: c_int) -> c_long;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn getpid() -> pid_t;
    pub fn pthread_self() -> pthread_t;
    pub fn pthread_kill(thread: pthread_t, sig: c_int) -> c_int;
    pub fn __errno_location() -> *mut c_int;
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysconf_reports_cpus() {
        let n = unsafe { sysconf(_SC_NPROCESSORS_ONLN) };
        assert!(n >= 1, "at least one online CPU expected, got {n}");
    }

    #[test]
    fn cpu_set_roundtrip() {
        unsafe {
            let mut set: cpu_set_t = core::mem::zeroed();
            CPU_ZERO(&mut set);
            CPU_SET(3, &mut set);
            assert_eq!(set.bits[0], 1 << 3);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn tgkill_sig0_probe_reports_esrch_for_dead_tid() {
        // Liveness probing cannot use pthread_kill: since glibc 2.35 it
        // returns 0 (silent no-op) for an exited-but-unjoined thread. The
        // kernel task id, however, is released the moment the thread exits
        // (threads self-reap without a join), so tgkill(pid, tid, 0) yields
        // ESRCH as soon as the thread is gone.
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            let tid = unsafe { syscall(SYS_gettid) } as pid_t;
            tx.send(tid).unwrap();
        });
        let tid = rx.recv().unwrap();
        let pid = unsafe { getpid() };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let rc = unsafe { syscall(SYS_tgkill, pid, tid, 0) };
            if rc != 0 {
                let errno = unsafe { *__errno_location() };
                assert_eq!(errno, ESRCH, "only ESRCH expected from a dead tid");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "finished thread never probed as ESRCH"
            );
            std::thread::yield_now();
        }
        h.join().unwrap();
        let self_tid = unsafe { syscall(SYS_gettid) } as pid_t;
        let live = unsafe { syscall(SYS_tgkill, pid, self_tid, 0) };
        assert_eq!(live, 0, "sig-0 probe of the calling thread");
    }

    #[test]
    fn mmap_madvise_roundtrip() {
        // Anonymous map → write → MADV_DONTNEED → pages read back as zero →
        // unmap, proving the declared signatures and constants are correct.
        let len: size_t = 1 << 16;
        unsafe {
            let p = mmap(
                core::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED, "anonymous mmap failed");
            let bytes = p as *mut u8;
            bytes.write(0xAB);
            bytes.add(len - 1).write(0xCD);
            assert_eq!(bytes.read(), 0xAB);
            let rc = madvise(p, len, MADV_DONTNEED);
            assert_eq!(rc, 0, "madvise(MADV_DONTNEED) failed");
            // Private anonymous pages dropped by DONTNEED refault as zero.
            assert_eq!(bytes.read(), 0);
            assert_eq!(bytes.add(len - 1).read(), 0);
            assert_eq!(munmap(p, len), 0);
        }
    }

    #[test]
    fn errno_location_is_stable() {
        let a = unsafe { __errno_location() };
        let b = unsafe { __errno_location() };
        assert_eq!(a, b);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn futex_wake_on_unwatched_word_is_harmless() {
        // FUTEX_WAKE with no waiters must return 0 (threads woken), proving
        // the declared syscall number and operand layout are correct.
        let word: u32 = 0;
        let r = unsafe {
            syscall(
                SYS_futex,
                &word as *const u32,
                FUTEX_WAKE | FUTEX_PRIVATE_FLAG,
                i32::MAX,
            )
        };
        assert_eq!(r, 0, "wake with no waiters must wake zero threads");
    }
}
