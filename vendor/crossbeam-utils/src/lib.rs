//! Minimal vendored `crossbeam-utils` for offline builds: only
//! [`CachePadded`], with the same alignment policy as the real crate
//! (128 bytes on x86_64/aarch64 to cover adjacent-line prefetchers).

/// Pads and aligns a value to the length of a cache line (pair).
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    repr(align(64))
)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> core::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> core::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(t: T) -> Self {
        CachePadded::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_isolates_cache_lines() {
        assert!(core::mem::align_of::<CachePadded<u64>>() >= 64);
        let arr = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= 64, "adjacent elements must not share a line");
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
