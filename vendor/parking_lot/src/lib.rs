//! Minimal vendored `parking_lot` for offline builds.
//!
//! Only the `Mutex` API surface this workspace uses, implemented over
//! `std::sync::Mutex` with parking_lot's non-poisoning semantics (a
//! panicked holder does not wedge subsequent lockers).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

/// A non-poisoning mutual-exclusion lock.
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(p) => MutexGuard(p.into_inner()),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> core::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> core::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not deadlock or panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
