//! Minimal vendored `rand` for offline builds.
//!
//! Implements only the surface this workspace uses — `rngs::SmallRng`
//! (xoshiro256++, the same family the real `SmallRng` uses on 64-bit),
//! `Rng::gen`/`gen_range`, `SeedableRng::seed_from_u64`, and
//! `seq::SliceRandom::shuffle` (Fisher-Yates). Distribution quality matches
//! the benchmark driver's needs: uniform over ranges via Lemire's method
//! would be overkill; widening-multiply rejection-free mapping is used,
//! whose bias is ≤ range/2⁶⁴ — irrelevant at benchmark key-range sizes.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from small seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values sampleable from 64 random bits — the `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(word: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using 53 mantissa bits.
    fn sample(word: u64) -> f64 {
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(word: u64) -> u64 {
        word
    }
}

impl Standard for u32 {
    fn sample(word: u64) -> u32 {
        (word >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(word: u64) -> bool {
        word >> 63 == 1
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Widening multiply maps 64 random bits onto [0, span).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    return Standard::sample(rng.next_u64()) // full domain
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_sample_range!(u32, u64, usize);

impl Standard for usize {
    fn sample(word: u64) -> usize {
        word as usize
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the `Standard` distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        Standard::sample(self.next_u64())
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, non-cryptographic; the same family the
    /// real `rand::rngs::SmallRng` uses on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(0u32..100);
            assert!(x < 100);
            let y = rng.gen_range(5u64..6);
            assert_eq!(y, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_coverage_is_plausibly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut hits = [0u32; 8];
        for _ in 0..8000 {
            hits[rng.gen_range(0usize..8)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((700..1300).contains(&h), "bucket {i} count {h} implausible");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }
}
